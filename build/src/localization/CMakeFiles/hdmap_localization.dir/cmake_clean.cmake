file(REMOVE_RECURSE
  "CMakeFiles/hdmap_localization.dir/cooperative_localization.cc.o"
  "CMakeFiles/hdmap_localization.dir/cooperative_localization.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/ekf_localizer.cc.o"
  "CMakeFiles/hdmap_localization.dir/ekf_localizer.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/lane_matcher.cc.o"
  "CMakeFiles/hdmap_localization.dir/lane_matcher.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/map_capability.cc.o"
  "CMakeFiles/hdmap_localization.dir/map_capability.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/marking_localizer.cc.o"
  "CMakeFiles/hdmap_localization.dir/marking_localizer.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/particle_filter.cc.o"
  "CMakeFiles/hdmap_localization.dir/particle_filter.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/raster_localizer.cc.o"
  "CMakeFiles/hdmap_localization.dir/raster_localizer.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/relocalization.cc.o"
  "CMakeFiles/hdmap_localization.dir/relocalization.cc.o.d"
  "CMakeFiles/hdmap_localization.dir/triangulation.cc.o"
  "CMakeFiles/hdmap_localization.dir/triangulation.cc.o.d"
  "libhdmap_localization.a"
  "libhdmap_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
