#include <gtest/gtest.h>

#include "maintenance/raster_diff.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(RasterDiffTest, IdenticalRastersYieldNoRegions) {
  HdMap map = SmallTownWorld(81, 2, 2);
  SemanticRaster raster = RasterizeMap(map, 0.5);
  RasterChangeDetector detector({});
  EXPECT_TRUE(detector.Detect(raster, raster).empty());
}

TEST(RasterDiffTest, LocalizesRemovedLandmarks) {
  HdMap map = SmallTownWorld(82, 2, 2);
  HdMap world = map;
  // Remove a couple of landmarks from one corner of the town.
  std::vector<ElementId> removed;
  for (const auto& [id, lm] : map.landmarks()) {
    if (lm.position.x < 80.0 && lm.position.y < 80.0) {
      removed.push_back(id);
    }
  }
  ASSERT_GE(removed.size(), 1u);
  for (ElementId id : removed) {
    ASSERT_TRUE(world.RemoveLandmark(id).ok());
  }
  // Both rasters must share one grid even though removing edge
  // landmarks shrank the world's own bounding box.
  Aabb extent = map.BoundingBox().Expanded(5.0);
  SemanticRaster map_raster = RasterizeMapInExtent(map, 0.5, extent);
  SemanticRaster world_raster = RasterizeMapInExtent(world, 0.5, extent);
  ASSERT_EQ(map_raster.width(), world_raster.width());

  RasterChangeDetector::Options opt;
  opt.window_cells = 40;
  opt.score_threshold = 0.01;
  RasterChangeDetector detector(opt);
  auto regions = detector.Detect(map_raster, world_raster);
  ASSERT_GE(regions.size(), 1u);
  // The strongest region must cover at least one removed landmark and
  // report the sign class as map-only (in map, missing in world).
  bool covered = false;
  for (ElementId id : removed) {
    const Landmark* lm = map.FindLandmark(id);
    for (const auto& region : regions) {
      if (region.region.Contains(lm->position.xy())) {
        covered = true;
        EXPECT_NE(region.map_only & (kRasterSign | kRasterLight), 0);
      }
    }
  }
  EXPECT_TRUE(covered);
}

TEST(RasterDiffTest, SortsStrongestFirst) {
  HdMap map = SmallTownWorld(83, 2, 2);
  HdMap world = map;
  std::vector<ElementId> ids;
  for (const auto& [id, lm] : world.landmarks()) ids.push_back(id);
  for (size_t i = 0; i < ids.size() / 2; ++i) {
    (void)world.RemoveLandmark(ids[i]);
  }
  RasterChangeDetector::Options opt;
  opt.window_cells = 30;
  opt.score_threshold = 0.0;
  opt.min_content_cells = 5;
  RasterChangeDetector detector(opt);
  Aabb extent = map.BoundingBox().Expanded(5.0);
  auto regions = detector.Detect(RasterizeMapInExtent(map, 0.5, extent),
                                 RasterizeMapInExtent(world, 0.5, extent));
  for (size_t i = 1; i < regions.size(); ++i) {
    EXPECT_GE(regions[i - 1].score, regions[i].score);
  }
}

TEST(RasterDiffTest, MismatchedGeometryIsFullChange) {
  SemanticRaster a(Aabb({0, 0}, {10, 10}), 0.5);
  SemanticRaster b(Aabb({0, 0}, {20, 20}), 0.5);
  RasterChangeDetector detector({});
  auto regions = detector.Detect(a, b);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].score, 1.0);
}

}  // namespace
}  // namespace hdmap
