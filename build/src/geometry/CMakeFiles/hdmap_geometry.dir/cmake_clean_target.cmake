file(REMOVE_RECURSE
  "libhdmap_geometry.a"
)
