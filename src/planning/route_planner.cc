#include "planning/route_planner.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace hdmap {

namespace {

struct QueueItem {
  double priority;
  ElementId node;
  bool operator>(const QueueItem& o) const { return priority > o.priority; }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>;

Route Reconstruct(const std::unordered_map<ElementId, ElementId>& parent,
                  const std::unordered_map<ElementId, double>& dist,
                  const std::unordered_map<ElementId, bool>& via_lane_change,
                  ElementId from, ElementId to) {
  Route route;
  route.cost_seconds = dist.at(to);
  ElementId cur = to;
  while (cur != from) {
    route.lanelets.push_back(cur);
    auto lc = via_lane_change.find(cur);
    if (lc != via_lane_change.end() && lc->second) ++route.lane_changes;
    cur = parent.at(cur);
  }
  route.lanelets.push_back(from);
  std::reverse(route.lanelets.begin(), route.lanelets.end());
  return route;
}

Result<Route> SearchUnidirectional(const RoutingGraph& graph, ElementId from,
                                   ElementId to, bool use_heuristic) {
  std::unordered_map<ElementId, double> dist;
  std::unordered_map<ElementId, ElementId> parent;
  std::unordered_map<ElementId, bool> via_lane_change;
  std::unordered_set<ElementId> settled;
  MinQueue queue;
  dist[from] = 0.0;
  queue.push({use_heuristic ? graph.HeuristicSeconds(from, to) : 0.0, from});
  size_t expanded = 0;

  while (!queue.empty()) {
    auto [priority, node] = queue.top();
    queue.pop();
    if (settled.count(node) > 0) continue;
    settled.insert(node);
    ++expanded;
    if (node == to) {
      Route route = Reconstruct(parent, dist, via_lane_change, from, to);
      route.nodes_expanded = expanded;
      return route;
    }
    double g = dist[node];
    for (const RoutingGraph::Edge& e : graph.OutEdges(node)) {
      double candidate = g + e.cost;
      auto it = dist.find(e.to);
      if (it == dist.end() || candidate < it->second) {
        dist[e.to] = candidate;
        parent[e.to] = node;
        via_lane_change[e.to] = e.lane_change;
        double h = use_heuristic ? graph.HeuristicSeconds(e.to, to) : 0.0;
        queue.push({candidate + h, e.to});
      }
    }
  }
  return Status::NotFound("no route between the given lanelets");
}

Result<Route> SearchBhps(const RoutingGraph& graph, ElementId from,
                         ElementId to) {
  // Reverse adjacency for the backward frontier.
  std::unordered_map<ElementId, std::vector<RoutingGraph::Edge>> reverse;
  for (const auto& [id, pos] : graph.node_positions()) {
    for (const RoutingGraph::Edge& e : graph.OutEdges(id)) {
      reverse[e.to].push_back({id, e.cost, e.lane_change});
    }
  }

  std::unordered_map<ElementId, double> dist_f, dist_r;
  std::unordered_map<ElementId, ElementId> parent_f, parent_r;
  std::unordered_map<ElementId, bool> lc_f, lc_r;
  std::unordered_set<ElementId> settled_f, settled_r;
  MinQueue queue_f, queue_r;
  dist_f[from] = 0.0;
  dist_r[to] = 0.0;
  queue_f.push({0.0, from});
  queue_r.push({0.0, to});
  size_t expanded = 0;
  double best_meet_cost = std::numeric_limits<double>::max();
  ElementId best_meet = kInvalidId;

  auto expand = [&](bool forward) {
    MinQueue& queue = forward ? queue_f : queue_r;
    auto& dist = forward ? dist_f : dist_r;
    auto& other_dist = forward ? dist_r : dist_f;
    auto& parent = forward ? parent_f : parent_r;
    auto& lc = forward ? lc_f : lc_r;
    auto& settled = forward ? settled_f : settled_r;
    while (!queue.empty()) {
      auto [priority, node] = queue.top();
      queue.pop();
      if (settled.count(node) > 0) continue;
      settled.insert(node);
      ++expanded;
      double g = dist[node];
      auto other = other_dist.find(node);
      if (other != other_dist.end() && g + other->second < best_meet_cost) {
        best_meet_cost = g + other->second;
        best_meet = node;
      }
      const auto& edges =
          forward ? graph.OutEdges(node)
                  : (reverse.count(node) > 0 ? reverse[node]
                                             : graph.OutEdges(kInvalidId));
      for (const RoutingGraph::Edge& e : edges) {
        double candidate = g + e.cost;
        auto it = dist.find(e.to);
        if (it == dist.end() || candidate < it->second) {
          dist[e.to] = candidate;
          parent[e.to] = node;
          lc[e.to] = e.lane_change;
          queue.push({candidate, e.to});
        }
      }
      return true;
    }
    return false;
  };

  while (!queue_f.empty() || !queue_r.empty()) {
    // Hybrid alternation: expand the side with the cheaper frontier top.
    double top_f = queue_f.empty()
                       ? std::numeric_limits<double>::max()
                       : queue_f.top().priority;
    double top_r = queue_r.empty()
                       ? std::numeric_limits<double>::max()
                       : queue_r.top().priority;
    // Standard bidirectional stopping criterion.
    if (best_meet != kInvalidId && top_f + top_r >= best_meet_cost) break;
    if (top_f <= top_r) {
      if (!expand(true)) break;
    } else {
      if (!expand(false)) break;
    }
  }

  if (best_meet == kInvalidId) {
    return Status::NotFound("no route between the given lanelets");
  }
  // Stitch forward path (from..meet) with reverse path (meet..to).
  Route fwd = Reconstruct(parent_f, dist_f, lc_f, from, best_meet);
  Route route;
  route.lanelets = fwd.lanelets;
  route.lane_changes = fwd.lane_changes;
  ElementId cur = best_meet;
  while (cur != to) {
    ElementId next = parent_r.at(cur);
    route.lanelets.push_back(next);
    if (lc_r.count(next) > 0 && lc_r.at(next)) ++route.lane_changes;
    cur = next;
  }
  route.cost_seconds = best_meet_cost;
  route.nodes_expanded = expanded;
  return route;
}

}  // namespace

Result<Route> PlanRoute(const RoutingGraph& graph, ElementId from,
                        ElementId to, RouteAlgorithm algorithm) {
  if (!graph.HasNode(from) || !graph.HasNode(to)) {
    return Status::InvalidArgument("endpoint lanelet not in routing graph");
  }
  if (from == to) {
    Route route;
    route.lanelets = {from};
    return route;
  }
  switch (algorithm) {
    case RouteAlgorithm::kDijkstra:
      return SearchUnidirectional(graph, from, to, /*use_heuristic=*/false);
    case RouteAlgorithm::kAStar:
      return SearchUnidirectional(graph, from, to, /*use_heuristic=*/true);
    case RouteAlgorithm::kBhps:
      return SearchBhps(graph, from, to);
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace hdmap
