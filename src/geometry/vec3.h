#ifndef HDMAP_GEOMETRY_VEC3_H_
#define HDMAP_GEOMETRY_VEC3_H_

#include <cmath>
#include <ostream>

#include "geometry/vec2.h"

namespace hdmap {

/// 3-D vector / point, meters. z is elevation.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}
  explicit constexpr Vec3(const Vec2& v, double z_in = 0.0)
      : x(v.x), y(v.y), z(z_in) {}

  constexpr Vec2 xy() const { return {x, y}; }

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double SquaredNorm() const { return x * x + y * y + z * z; }
  double DistanceTo(const Vec3& o) const { return (*this - o).Norm(); }
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_VEC3_H_
