#include "atv/factory_world.h"

#include <algorithm>
#include <limits>
#include <string>

#include "core/ids.h"

namespace hdmap {

Result<FactoryWorld> GenerateFactory(const FactoryOptions& opt, Rng& rng) {
  if (opt.width <= 0.0 || opt.depth <= 0.0 || opt.rack_rows < 1) {
    return Status::InvalidArgument("invalid factory options");
  }
  double needed_depth =
      opt.rack_rows * opt.rack_depth + (opt.rack_rows + 1) * opt.aisle_width;
  if (needed_depth > opt.depth) {
    return Status::InvalidArgument(
        "rack rows + aisles exceed the factory depth");
  }
  FactoryWorld world;
  world.extent = Aabb({0.0, 0.0}, {opt.width, opt.depth});

  // Perimeter walls.
  world.walls.push_back({{0, 0}, {opt.width, 0}});
  world.walls.push_back({{opt.width, 0}, {opt.width, opt.depth}});
  world.walls.push_back({{opt.width, opt.depth}, {0, opt.depth}});
  world.walls.push_back({{0, opt.depth}, {0, 0}});

  IdAllocator ids;
  double rack_x0 = (opt.width - opt.rack_length) / 2.0;
  double rack_x1 = rack_x0 + opt.rack_length;

  // Rack rows and the aisles between them.
  for (int row = 0; row < opt.rack_rows; ++row) {
    double y0 = opt.aisle_width + row * (opt.rack_depth + opt.aisle_width);
    double y1 = y0 + opt.rack_depth;
    // Rack as a rectangle of wall segments.
    world.walls.push_back({{rack_x0, y0}, {rack_x1, y0}});
    world.walls.push_back({{rack_x1, y0}, {rack_x1, y1}});
    world.walls.push_back({{rack_x1, y1}, {rack_x0, y1}});
    world.walls.push_back({{rack_x0, y1}, {rack_x0, y0}});
  }

  // Aisle centerlines (one below each rack row, plus one above the top
  // row) and signs mounted facing each aisle.
  for (int aisle = 0; aisle <= opt.rack_rows; ++aisle) {
    double y_center =
        aisle * (opt.rack_depth + opt.aisle_width) + opt.aisle_width / 2.0;
    world.aisles.push_back(
        LineString({{rack_x0, y_center}, {rack_x1, y_center}}));

    // Signs on the rack faces bordering this aisle.
    for (double x = rack_x0 + opt.sign_spacing / 2; x < rack_x1;
         x += opt.sign_spacing) {
      Landmark sign;
      sign.id = ids.Next();
      sign.type = LandmarkType::kTrafficSign;
      sign.subtype = rng.Bernoulli(0.5) ? "safety_exit" : "speed_zone";
      // Mount on the rack face above the aisle (or the wall for the top
      // aisle).
      double mount_y = y_center + opt.aisle_width / 2.0;
      sign.position = Vec3{x, std::min(mount_y, opt.depth - 0.1), 2.0};
      sign.reflectivity = 0.9;
      HDMAP_RETURN_IF_ERROR(world.sign_map.AddLandmark(std::move(sign)));
    }
  }
  return world;
}

double CastRay(const std::vector<Segment>& walls, const Vec2& origin,
               const Vec2& direction, double max_range) {
  Segment ray(origin, origin + direction * max_range);
  double best = max_range;
  for (const Segment& wall : walls) {
    auto hit = ray.Intersect(wall);
    if (hit.has_value()) {
      best = std::min(best, origin.DistanceTo(*hit));
    }
  }
  return best;
}

}  // namespace hdmap
