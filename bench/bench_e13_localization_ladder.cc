// E13 — the localization accuracy ladder of §III-1 ([50], [54], [59]):
// GPS alone gives meter-level fixes; fusing odometry + map landmarks in
// an EKF reaches sub-meter; marking-based map matching reaches
// lane-level (decimeter) lateral accuracy; lane identification with
// integrity rides on top.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "localization/ekf_localizer.h"
#include "localization/lane_matcher.h"
#include "localization/marking_localizer.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader(
      "E13", "Localization ladder: GPS -> EKF -> marking PF [50,54,59]",
      "meter-level GPS, sub-meter map-EKF, lane-level (dm) marking "
      "matching; lane identity with integrity");

  HdMap map = StraightRoad(1500.0, 50.0);
  Rng rng(1901);
  GpsSensor gps({1.6, 1.0, 0.005}, rng);
  OdometrySensor odo({});
  LandmarkDetector detector({});
  MarkingScanner scanner({});

  EkfLocalizer ekf(&map, {});
  MarkingLocalizer::Options mopt;
  mopt.filter.num_particles = 250;
  MarkingLocalizer marking(&map, mopt);
  LaneMatcher matcher(&map, {});

  Pose2 truth(10.0, -1.75, 0.0);
  ekf.Init(truth, 0.5, 0.02);
  marking.Init(truth, 0.5, 0.02, rng);

  RunningStats gps_err, ekf_err, marking_lat, marking_total;
  int lane_correct = 0, lane_total = 0, with_integrity = 0;
  for (int step = 0; step < 600; ++step) {
    Pose2 next(truth.translation + Vec2{2.0, 0.0}, 0.0);
    auto delta = odo.Measure(truth, next, rng);
    truth = next;
    Vec2 fix = gps.Measure(truth.translation, rng);

    ekf.Predict(delta.distance, delta.heading_change);
    ekf.UpdateGps(fix);
    ekf.UpdateLandmarks(detector.Detect(map, truth, rng));

    marking.Predict(delta.distance, delta.heading_change, rng);
    marking.Update(scanner.Scan(map, truth, rng), rng);

    auto lane = matcher.Step(ekf.estimate().translation,
                             ekf.estimate().heading, delta.distance);

    if (step > 50) {
      gps_err.Add(fix.DistanceTo(truth.translation));
      ekf_err.Add(ekf.estimate().translation.DistanceTo(truth.translation));
      marking_lat.Add(
          std::abs(marking.Estimate().translation.y - truth.translation.y));
      marking_total.Add(
          marking.Estimate().translation.DistanceTo(truth.translation));
      ++lane_total;
      if (lane.has_integrity) ++with_integrity;
      const Lanelet* ll = map.FindLanelet(lane.lanelet_id);
      if (ll != nullptr &&
          std::abs(ll->centerline.Project(truth.translation).signed_offset) <
              1.75) {
        ++lane_correct;
      }
    }
  }

  bench::PrintRow("GPS-only mean error (m)", "meters",
                  bench::Fmt("%.2f", gps_err.mean()));
  bench::PrintRow("EKF (GPS+odom+landmarks) mean error (m)", "sub-meter",
                  bench::Fmt("%.2f", ekf_err.mean()));
  bench::PrintRow("marking-PF lateral error (m)", "lane-level (dm)",
                  bench::Fmt("%.2f", marking_lat.mean()));
  bench::PrintRow("marking-PF total error (m)", "(long. weaker on hwys)",
                  bench::Fmt("%.2f", marking_total.mean()));
  bench::PrintRow("lane identification rate", "high",
                  bench::Fmt("%.1f%%", 100.0 * lane_correct /
                                           std::max(1, lane_total)));
  bench::PrintRow("steps with integrity flag", "reported",
                  bench::Fmt("%.1f%%", 100.0 * with_integrity /
                                           std::max(1, lane_total)));
  std::printf("\n");
  bool ladder = ekf_err.mean() < gps_err.mean() &&
                marking_lat.mean() < ekf_err.mean();
  bench::PrintRow("ladder ordering GPS > EKF > marking(lat)", "holds",
                  ladder ? "holds" : "NO");
  std::printf("\n");
  return ladder ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
