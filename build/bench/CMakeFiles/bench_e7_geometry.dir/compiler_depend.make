# Empty compiler generated dependencies file for bench_e7_geometry.
# This may be replaced when dependencies are built.
