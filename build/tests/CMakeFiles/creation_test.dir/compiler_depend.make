# Empty compiler generated dependencies file for creation_test.
# This may be replaced when dependencies are built.
