#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/trace.h"

namespace hdmap {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Carry the submitting thread's trace context into the worker so spans
  // opened inside the task nest under the submitting span.
  TraceContext ctx = CurrentTraceContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back([ctx, task = std::move(task)] {
      TraceContextScope scope(ctx);
      task();
    });
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  // Below this, thread spawn/join overhead dominates any win.
  constexpr size_t kSerialCutoff = 2;
  if (num_threads <= 1 || n < kSerialCutoff) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  size_t chunk = (n + num_threads - 1) / num_threads;
  // Propagate the calling thread's trace context so spans opened inside
  // the loop body nest under the caller's span (one track per worker).
  TraceContext ctx = CurrentTraceContext();
  for (size_t t = 0; t < num_threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &fn, ctx] {
      TraceContextScope scope(ctx);
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace hdmap
