file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_localization_ladder.dir/bench_e13_localization_ladder.cc.o"
  "CMakeFiles/bench_e13_localization_ladder.dir/bench_e13_localization_ladder.cc.o.d"
  "bench_e13_localization_ladder"
  "bench_e13_localization_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_localization_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
