file(REMOVE_RECURSE
  "libhdmap_localization.a"
)
