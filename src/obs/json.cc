#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace hdmap {

namespace {

constexpr int kMaxDepth = 48;

// Local analogue of HDMAP_RETURN_IF_ERROR for use inside Result-returning
// helpers (the common macro returns Status, not Result).
#define HDMAP_RETURN_IF_ERROR_RESULT(expr)        \
  do {                                            \
    Status status_ = (expr);                      \
    if (!status_.ok()) return status_;            \
  } while (0)

/// Recursive-descent parser over a string_view cursor. Errors carry the
/// byte offset so a malformed scrape payload is diagnosable.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    HDMAP_RETURN_IF_ERROR_RESULT(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(std::string_view word, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    if (word == "null") {
      out->kind = JsonValue::Kind::kNull;
    } else {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = (word == "true");
    }
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // The kStats emitters escape control bytes as \u00XX; decode
          // the BMP code point as a raw byte when it fits, else replace.
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          out->push_back(code < 256 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      HDMAP_RETURN_IF_ERROR_RESULT(ParseValue(&element, depth + 1));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      HDMAP_RETURN_IF_ERROR_RESULT(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      HDMAP_RETURN_IF_ERROR_RESULT(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

#undef HDMAP_RETURN_IF_ERROR_RESULT

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != Kind::kString) return fallback;
  return value->string_value;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != Kind::kNumber) return fallback;
  return value->number_value;
}

uint64_t JsonValue::GetU64(std::string_view key, uint64_t fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != Kind::kNumber ||
      value->number_value < 0) {
    return fallback;
  }
  return static_cast<uint64_t>(value->number_value);
}

int64_t JsonValue::GetI64(std::string_view key, int64_t fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != Kind::kNumber) return fallback;
  return static_cast<int64_t>(value->number_value);
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace hdmap
