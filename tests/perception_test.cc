#include <gtest/gtest.h>

#include "perception/cooperative.h"
#include "perception/object_detector.h"
#include "sim/road_network_generator.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

/// Hilly highway scene with vehicles placed on the road.
struct PerceptionScene {
  HdMap map;
  std::vector<SimObject> objects;
  Pose2 sensor_pose;
};

PerceptionScene MakeScene(uint64_t seed, int num_objects) {
  PerceptionScene scene;
  Rng rng(seed);
  HighwayOptions opt;
  opt.length = 2000.0;
  opt.hill_amplitude = 15.0;
  opt.hill_wavelength = 800.0;
  auto hw = GenerateHighway(opt, rng);
  EXPECT_TRUE(hw.ok());
  scene.map = std::move(hw).value();

  // Sensor somewhere mid-corridor; objects ahead on lanes.
  const Lanelet* lane = nullptr;
  for (const auto& [id, ll] : scene.map.lanelets()) {
    if (ll.Length() > 300.0 && !ll.successors.empty()) {
      lane = &ll;
      break;
    }
  }
  if (lane == nullptr) lane = &scene.map.lanelets().begin()->second;
  scene.sensor_pose = Pose2(lane->centerline.PointAt(10.0),
                            lane->centerline.HeadingAt(10.0));
  // Objects stay well inside the sensor range (70 m) of the scan model.
  for (int i = 0; i < num_objects; ++i) {
    double s = 25.0 + i * 12.0;
    if (s > lane->Length() - 5.0 ||
        lane->centerline.PointAt(s).DistanceTo(
            scene.sensor_pose.translation) > 60.0) {
      break;
    }
    SimObject obj;
    obj.position = lane->centerline.PointAt(s);
    obj.heading = lane->centerline.HeadingAt(s);
    scene.objects.push_back(obj);
  }
  return scene;
}

TEST(ObjectDetectorTest, MapPriorsImproveDetection) {
  PerceptionScene scene = MakeScene(51, 5);
  ASSERT_GE(scene.objects.size(), 3u);
  Rng rng(52);

  double f1_none = 0.0, f1_online = 0.0, f1_map = 0.0;
  const int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto scan = SimulateSceneScan(scene.map, scene.objects,
                                  scene.sensor_pose, {}, rng);
    DetectorOptions dopt;
    auto score = [&](MapPriorMode mode) {
      auto detections = DetectObjects(scene.map, scan, mode, dopt);
      return ScoreDetections(detections, scene.objects).F1();
    };
    f1_none += score(MapPriorMode::kNone);
    f1_online += score(MapPriorMode::kOnlineEstimated);
    f1_map += score(MapPriorMode::kFullMap);
  }
  f1_none /= kTrials;
  f1_online /= kTrials;
  f1_map /= kTrials;

  // The HDNET shape: full map priors win; online estimation helps over
  // nothing but does not reach the map.
  EXPECT_GT(f1_map, f1_none + 0.05);
  EXPECT_GE(f1_map, f1_online);
  EXPECT_GT(f1_map, 0.7);
}

TEST(ObjectDetectorTest, RecallStaysHighWithMapPriors) {
  PerceptionScene scene = MakeScene(53, 5);
  Rng rng(54);
  auto scan = SimulateSceneScan(scene.map, scene.objects, scene.sensor_pose,
                                {}, rng);
  auto detections =
      DetectObjects(scene.map, scan, MapPriorMode::kFullMap, {});
  auto confusion = ScoreDetections(detections, scene.objects);
  EXPECT_GT(confusion.Sensitivity(), 0.6);
}

TEST(ScoreDetectionsTest, CountsCorrectly) {
  std::vector<SimObject> objects(2);
  objects[0].position = {0, 0};
  objects[1].position = {50, 0};
  std::vector<ObjectDetection> detections(3);
  detections[0].centroid = {0.5, 0.5};    // Hits object 0.
  detections[1].centroid = {100, 100};    // False positive.
  detections[2].centroid = {0.8, -0.5};   // Also object 0 (double count).
  auto confusion = ScoreDetections(detections, objects);
  EXPECT_EQ(confusion.tp, 2u);
  EXPECT_EQ(confusion.fp, 1u);
  EXPECT_EQ(confusion.fn, 1u);  // Object 1 missed.
}

TEST(ObjectTrackerTest, TracksConstantVelocity) {
  ObjectTracker tracker({});
  Rng rng(55);
  Vec2 truth{0, 0};
  Vec2 velocity{10.0, 0.0};
  RunningStats err;
  for (int step = 0; step < 60; ++step) {
    double t = step * 0.1;
    truth = Vec2{velocity.x * t, velocity.y * t};
    ObjectMeasurement m;
    m.object_id = 1;
    m.position = truth + Vec2{rng.Normal(0.0, 0.4), rng.Normal(0.0, 0.4)};
    m.noise_sigma = 0.4;
    tracker.Fuse(m, t);
    if (step > 20) {
      err.Add(tracker.Find(1)->position.DistanceTo(truth));
    }
  }
  EXPECT_LT(err.mean(), 0.4);  // Better than raw measurement noise floor.
  EXPECT_NEAR(tracker.Find(1)->velocity.x, 10.0, 2.5);
}

TEST(ObjectTrackerTest, CooperativeFusionTightensEstimate) {
  Rng rng(56);
  RunningStats ego_only_err, fused_err;
  for (int trial = 0; trial < 10; ++trial) {
    ObjectTracker ego_only({}), fused({});
    Vec2 velocity{8.0, 1.0};
    for (int step = 0; step < 50; ++step) {
      double t = step * 0.1;
      Vec2 truth{velocity.x * t, velocity.y * t};
      // Ego sensor: sparse (every 5th frame) and noisy.
      if (step % 5 == 0) {
        ObjectMeasurement ego;
        ego.object_id = 1;
        ego.position =
            truth + Vec2{rng.Normal(0.0, 0.8), rng.Normal(0.0, 0.8)};
        ego.noise_sigma = 0.8;
        ego_only.Fuse(ego, t);
        fused.Fuse(ego, t);
      }
      // Roadside camera: every frame, modest noise (Masi et al. [63]).
      ObjectMeasurement roadside;
      roadside.object_id = 1;
      roadside.position =
          truth + Vec2{rng.Normal(0.0, 0.5), rng.Normal(0.0, 0.5)};
      roadside.noise_sigma = 0.5;
      fused.Fuse(roadside, t);

      if (step > 25) {
        double t_now = step * 0.1;
        ego_only.PredictTo(t_now);
        fused.PredictTo(t_now);
        if (ego_only.Find(1) != nullptr) {
          ego_only_err.Add(ego_only.Find(1)->position.DistanceTo(truth));
        }
        fused_err.Add(fused.Find(1)->position.DistanceTo(truth));
      }
    }
  }
  EXPECT_LT(fused_err.mean(), ego_only_err.mean());
}

TEST(ObjectTrackerTest, UnknownTrackIsNull) {
  ObjectTracker tracker({});
  EXPECT_EQ(tracker.Find(7), nullptr);
}

}  // namespace
}  // namespace hdmap
