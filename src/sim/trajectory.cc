#include "sim/trajectory.h"

#include <algorithm>
#include <string>

namespace hdmap {

Result<std::vector<TimedPose>> DriveRoute(const HdMap& map,
                                          const std::vector<ElementId>& route,
                                          const TrajectoryOptions& options) {
  if (route.empty()) {
    return Status::InvalidArgument("empty route");
  }
  if (options.dt <= 0.0) {
    return Status::InvalidArgument("dt must be positive");
  }
  // Validate connectivity.
  for (size_t i = 0; i < route.size(); ++i) {
    const Lanelet* ll = map.FindLanelet(route[i]);
    if (ll == nullptr) {
      return Status::NotFound("route lanelet " + std::to_string(route[i]));
    }
    if (i > 0) {
      const Lanelet* prev = map.FindLanelet(route[i - 1]);
      bool connected =
          std::find(prev->successors.begin(), prev->successors.end(),
                    route[i]) != prev->successors.end() ||
          prev->left_neighbor == route[i] ||
          prev->right_neighbor == route[i];
      if (!connected) {
        return Status::InvalidArgument(
            "route not connected at lanelet " + std::to_string(route[i]));
      }
    }
  }

  std::vector<TimedPose> out;
  double t = 0.0;
  for (ElementId id : route) {
    const Lanelet& ll = *map.FindLanelet(id);
    double speed =
        std::max(0.5, map.EffectiveSpeedLimit(id) * options.speed_factor);
    double len = ll.centerline.Length();
    for (double s = 0.0; s < len; s += speed * options.dt) {
      TimedPose tp;
      tp.t = t;
      Vec2 base = ll.centerline.PointAt(s);
      Vec2 tangent = ll.centerline.TangentAt(s);
      tp.pose = Pose2(base + tangent.Perp() * options.lateral_offset,
                      tangent.Angle());
      tp.speed = speed;
      tp.lanelet_id = id;
      tp.arc_length = s;
      out.push_back(tp);
      t += options.dt;
    }
  }
  return out;
}

}  // namespace hdmap
