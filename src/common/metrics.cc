#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hdmap {

namespace {

/// Small dense per-thread ordinal used to pick a histogram shard; stable
/// for the thread's lifetime so a thread always hits the same shard.
size_t ThisThreadShardOrdinal() {
  static std::atomic<size_t> next{0};
  thread_local size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Splits "subsystem.verb{TAG}" into {"subsystem.verb", "TAG"}; the tag is
/// empty when the name has no suffix.
std::pair<std::string, std::string> SplitTag(const std::string& name) {
  size_t open = name.find('{');
  if (open == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, open),
          name.substr(open + 1, name.size() - open - 2)};
}

/// Maps an instrument base name to a Prometheus metric name: invalid
/// characters become '_' and everything is prefixed "hdmap_".
std::string PromName(const std::string& base) {
  std::string out = "hdmap_";
  for (char c : base) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
std::string PromEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Escapes Prometheus HELP text: backslash and newline only (quotes are
/// legal there).
std::string PromEscapeHelp(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// "{tag="X"}" / "{tag="X",le="Y"}" / "{le="Y"}" / "" label block.
std::string LabelBlock(const std::string& tag, const std::string& le = "") {
  if (tag.empty() && le.empty()) return "";
  std::string out = "{";
  if (!tag.empty()) out += "tag=\"" + PromEscapeLabel(tag) + "\"";
  if (!le.empty()) {
    if (!tag.empty()) out += ",";
    out += "le=\"" + le + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) return;  // Rejects negatives and NaN.
  Shard& shard = shards_[ThisThreadShardOrdinal() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.stats.Add(seconds);
  // log10(0) is -inf; any sub-microsecond sample lands in underflow anyway.
  shard.log_histogram.Add(seconds > 0.0 ? std::log10(seconds) : kLogLo - 1.0);
}

RunningStats LatencyHistogram::MergedStats() const {
  RunningStats merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.Merge(shard.stats);
  }
  return merged;
}

Histogram LatencyHistogram::MergedHistogram() const {
  Histogram merged(kLogLo, kLogHi, kLogBins);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.Merge(shard.log_histogram);
  }
  return merged;
}

size_t LatencyHistogram::count() const { return MergedStats().count(); }

double LatencyHistogram::mean_seconds() const { return MergedStats().mean(); }

double LatencyHistogram::min_seconds() const { return MergedStats().min(); }

double LatencyHistogram::max_seconds() const { return MergedStats().max(); }

double LatencyHistogram::sum_seconds() const {
  RunningStats merged = MergedStats();
  return merged.mean() * static_cast<double>(merged.count());
}

double LatencyHistogram::ApproxPercentileSeconds(double p) const {
  Histogram merged = MergedHistogram();
  size_t total = merged.total();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile among all samples, in cumulative
  // count space: underflow bucket first, then the bins, then overflow.
  double rank = p / 100.0 * static_cast<double>(total);
  double cumulative = static_cast<double>(merged.underflow());
  if (rank <= cumulative) return std::pow(10.0, kLogLo);
  for (int bin = 0; bin < merged.num_bins(); ++bin) {
    double in_bin = static_cast<double>(merged.bin_count(bin));
    if (in_bin > 0.0 && rank <= cumulative + in_bin) {
      // Linear interpolation within the bucket, in log space.
      double frac = (rank - cumulative) / in_bin;
      double log_value =
          merged.bin_lo(bin) +
          frac * (merged.bin_hi(bin) - merged.bin_lo(bin));
      return std::pow(10.0, log_value);
    }
    cumulative += in_bin;
  }
  return std::pow(10.0, kLogHi);
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::CumulativeBuckets()
    const {
  Histogram merged = MergedHistogram();
  // Export at 1/4-decade granularity: 8 internal bins per exported bucket,
  // 28 finite bounds over [1 us, 10 s).
  constexpr int kStride = 8;
  std::vector<Bucket> out;
  out.reserve(kLogBins / kStride + 1);
  uint64_t cumulative = merged.underflow();
  for (int bin = 0; bin < kLogBins; ++bin) {
    cumulative += merged.bin_count(bin);
    if ((bin + 1) % kStride == 0) {
      out.push_back({std::pow(10.0, merged.bin_hi(bin)), cumulative});
    }
  }
  cumulative += merged.overflow();
  out.push_back({std::numeric_limits<double>::infinity(), cumulative});
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetLatency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = std::move(help);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, gauge->value()});
  }
  for (const auto& [name, latency] : latencies_) {
    out.push_back({name + ".count", static_cast<double>(latency->count())});
    out.push_back({name + ".mean_ms", latency->mean_seconds() * 1e3});
    out.push_back(
        {name + ".p50_ms", latency->ApproxPercentileSeconds(50.0) * 1e3});
    out.push_back(
        {name + ".p99_ms", latency->ApproxPercentileSeconds(99.0) * 1e3});
    out.push_back({name + ".max_ms", latency->max_seconds() * 1e3});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::Render() const {
  std::string text;
  for (const Sample& s : Snapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-44s %.6g\n", s.name.c_str(), s.value);
    text += buf;
  }
  return text;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;

  // Group series by family (instrument base name) first: sorted full names
  // do NOT keep a family's series contiguous ("x.errors2" sorts between
  // "x.errors" and "x.errors{A}"), and a family must emit exactly one
  // HELP/TYPE header.
  auto help_for = [this](const std::string& base) {
    auto it = help_.find(base);
    return it != help_.end() ? PromEscapeHelp(it->second)
                             : "hdmap instrument " + PromEscapeHelp(base);
  };

  {
    std::map<std::string, std::vector<std::pair<std::string, uint64_t>>>
        families;
    for (const auto& [name, counter] : counters_) {
      auto [base, tag] = SplitTag(name);
      families[base].emplace_back(tag, counter->value());
    }
    for (const auto& [base, series] : families) {
      std::string fam = PromName(base) + "_total";
      out += "# HELP " + fam + " " + help_for(base) + "\n";
      out += "# TYPE " + fam + " counter\n";
      for (const auto& [tag, value] : series) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += fam + LabelBlock(tag) + " " + buf + "\n";
      }
    }
  }

  {
    std::map<std::string, std::vector<std::pair<std::string, double>>>
        families;
    for (const auto& [name, gauge] : gauges_) {
      auto [base, tag] = SplitTag(name);
      families[base].emplace_back(tag, gauge->value());
    }
    for (const auto& [base, series] : families) {
      std::string fam = PromName(base);
      out += "# HELP " + fam + " " + help_for(base) + "\n";
      out += "# TYPE " + fam + " gauge\n";
      for (const auto& [tag, value] : series) {
        out += fam + LabelBlock(tag) + " " + FormatDouble(value) + "\n";
      }
    }
  }

  {
    std::map<std::string,
             std::vector<std::pair<std::string, const LatencyHistogram*>>>
        families;
    for (const auto& [name, latency] : latencies_) {
      auto [base, tag] = SplitTag(name);
      families[base].emplace_back(tag, latency.get());
    }
    for (const auto& [base, series] : families) {
      std::string fam = PromName(base) + "_seconds";
      out += "# HELP " + fam + " " + help_for(base) + " (seconds)\n";
      out += "# TYPE " + fam + " histogram\n";
      for (const auto& [tag, latency] : series) {
        for (const LatencyHistogram::Bucket& bucket :
             latency->CumulativeBuckets()) {
          std::string le = std::isinf(bucket.le_seconds)
                               ? "+Inf"
                               : FormatDouble(bucket.le_seconds);
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(
                            bucket.cumulative_count));
          out += fam + "_bucket" + LabelBlock(tag, le) + " " + buf + "\n";
        }
        out += fam + "_sum" + LabelBlock(tag) + " " +
               FormatDouble(latency->sum_seconds()) + "\n";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%zu", latency->count());
        out += fam + "_count" + LabelBlock(tag) + " " + buf + "\n";
      }
    }
  }

  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": [";

  bool first = true;
  for (const auto& [name, counter] : counters_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(counter->value()));
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(name) +
           "\", \"type\": \"counter\", \"unit\": \"1\", \"value\": " + buf +
           "}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(name) +
           "\", \"type\": \"gauge\", \"unit\": \"1\", \"value\": " +
           FormatDouble(gauge->value()) + "}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const auto& [name, latency] : latencies_) {
    char count_buf[32];
    std::snprintf(count_buf, sizeof(count_buf), "%zu", latency->count());
    out += first ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(name) +
           "\", \"type\": \"histogram\", \"unit\": \"seconds\", "
           "\"count\": " +
           count_buf + ", \"sum\": " + FormatDouble(latency->sum_seconds()) +
           ", \"mean\": " + FormatDouble(latency->mean_seconds()) +
           ", \"min\": " + FormatDouble(latency->min_seconds()) +
           ", \"max\": " + FormatDouble(latency->max_seconds()) +
           ", \"p50\": " +
           FormatDouble(latency->ApproxPercentileSeconds(50.0)) +
           ", \"p90\": " +
           FormatDouble(latency->ApproxPercentileSeconds(90.0)) +
           ", \"p99\": " +
           FormatDouble(latency->ApproxPercentileSeconds(99.0)) + "}";
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + latencies_.size());
  for (const auto& [name, unused] : counters_) out.push_back(name);
  for (const auto& [name, unused] : gauges_) out.push_back(name);
  for (const auto& [name, unused] : latencies_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hdmap
