#ifndef HDMAP_COMMON_METRICS_H_
#define HDMAP_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/statistics.h"

namespace hdmap {

/// Monotonic counter (events served, cache hits, errors). Increment is
/// lock-free; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (snapshot version, queue depth, age). Set/value are
/// lock-free; safe from any thread.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency distribution: exact count/mean/min/max via RunningStats plus
/// approximate percentiles from a log10-bucketed Histogram covering
/// [1 us, 10 s) (sub-microsecond samples land in the underflow bucket,
/// 10 s+ in overflow). Bucketing keeps memory constant no matter how many
/// samples arrive; percentile error is bounded by the bucket width
/// (~5% relative). Record/readers are serialized by an internal mutex.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample, in seconds. Negative samples are ignored.
  void Record(double seconds);

  size_t count() const;
  double mean_seconds() const;
  double min_seconds() const;
  double max_seconds() const;

  /// Approximate p-th percentile (p in [0, 100]) in seconds, interpolated
  /// within the log-scale bucket; 0 with no samples. Percentiles that fall
  /// in the underflow/overflow buckets clamp to the range edge.
  double ApproxPercentileSeconds(double p) const;

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
  Histogram log_histogram_;  // Buckets over log10(seconds).
};

/// Named registry of counters, gauges, and latency histograms: the single
/// observability surface for the serving stack (MapService endpoints,
/// TileStore cache, patch publishing). Get* registers on first use and
/// returns a pointer that stays valid for the registry's lifetime, so hot
/// paths resolve names once and then touch only the instrument. All
/// methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetLatency(const std::string& name);

  /// One exported metric value. Latencies export count/mean/p50/p99.
  struct Sample {
    std::string name;  ///< Instrument name plus suffix, e.g. "x.p99_ms".
    double value = 0.0;
  };

  /// Flattened snapshot of every registered instrument, sorted by name.
  /// Latency values are exported in milliseconds.
  std::vector<Sample> Snapshot() const;

  /// Human-readable dump, one "name value" row per Sample.
  std::string Render() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: pointers handed out by Get* stay stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

/// RAII timer: records the elapsed wall time into a LatencyHistogram when
/// it goes out of scope. A null histogram disables it (zero-cost guard for
/// optional metrics).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram)
      : histogram_(histogram),
        start_(histogram == nullptr
                   ? std::chrono::steady_clock::time_point{}
                   : std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_METRICS_H_
