file(REMOVE_RECURSE
  "CMakeFiles/hdmap_atv.dir/factory_world.cc.o"
  "CMakeFiles/hdmap_atv.dir/factory_world.cc.o.d"
  "CMakeFiles/hdmap_atv.dir/occupancy_grid.cc.o"
  "CMakeFiles/hdmap_atv.dir/occupancy_grid.cc.o.d"
  "CMakeFiles/hdmap_atv.dir/scan_matcher.cc.o"
  "CMakeFiles/hdmap_atv.dir/scan_matcher.cc.o.d"
  "CMakeFiles/hdmap_atv.dir/sign_update.cc.o"
  "CMakeFiles/hdmap_atv.dir/sign_update.cc.o.d"
  "libhdmap_atv.a"
  "libhdmap_atv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmap_atv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
