#ifndef HDMAP_SIM_VEHICLE_H_
#define HDMAP_SIM_VEHICLE_H_

#include "geometry/pose2.h"

namespace hdmap {

/// Kinematic bicycle model: the standard vehicle motion substrate for
/// localization and planning experiments.
class BicycleModel {
 public:
  struct State {
    Pose2 pose;
    double speed = 0.0;  // m/s, longitudinal.
  };

  explicit BicycleModel(double wheelbase = 2.7) : wheelbase_(wheelbase) {}

  double wheelbase() const { return wheelbase_; }

  /// Advances `state` by dt seconds under acceleration (m/s^2) and
  /// steering angle (rad, at the front axle).
  State Step(const State& state, double acceleration, double steering,
             double dt) const {
    State next = state;
    next.speed = std::max(0.0, state.speed + acceleration * dt);
    double mid_speed = 0.5 * (state.speed + next.speed);
    double yaw_rate = mid_speed * std::tan(steering) / wheelbase_;
    double heading_mid = state.pose.heading + 0.5 * yaw_rate * dt;
    Vec2 delta{mid_speed * std::cos(heading_mid) * dt,
               mid_speed * std::sin(heading_mid) * dt};
    next.pose = Pose2(state.pose.translation + delta,
                      state.pose.heading + yaw_rate * dt);
    return next;
  }

 private:
  double wheelbase_;
};

}  // namespace hdmap

#endif  // HDMAP_SIM_VEHICLE_H_
