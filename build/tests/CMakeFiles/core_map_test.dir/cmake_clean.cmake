file(REMOVE_RECURSE
  "CMakeFiles/core_map_test.dir/core_map_test.cc.o"
  "CMakeFiles/core_map_test.dir/core_map_test.cc.o.d"
  "core_map_test"
  "core_map_test.pdb"
  "core_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
