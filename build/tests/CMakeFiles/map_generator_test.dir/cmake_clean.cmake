file(REMOVE_RECURSE
  "CMakeFiles/map_generator_test.dir/map_generator_test.cc.o"
  "CMakeFiles/map_generator_test.dir/map_generator_test.cc.o.d"
  "map_generator_test"
  "map_generator_test.pdb"
  "map_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
