#ifndef HDMAP_CORE_ROUTING_GRAPH_H_
#define HDMAP_CORE_ROUTING_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "core/hd_map.h"

namespace hdmap {

/// The topological layer materialized for search (Lanelet2 layer 3):
/// nodes are lanelets; edges are successor transitions and lane changes.
class RoutingGraph {
 public:
  struct Edge {
    ElementId to = kInvalidId;
    double cost = 0.0;        ///< Travel-time seconds at the speed limit.
    bool lane_change = false;
  };

  RoutingGraph() = default;

  /// Builds the graph from a map's lanelet topology. `lane_change_penalty`
  /// is added (seconds) per lane-change edge.
  static RoutingGraph Build(const HdMap& map,
                            double lane_change_penalty = 2.0);

  size_t NumNodes() const { return edges_.size(); }
  size_t NumEdges() const { return num_edges_; }
  bool HasNode(ElementId id) const { return edges_.count(id) > 0; }

  const std::vector<Edge>& OutEdges(ElementId id) const;

  /// Straight-line lower bound (seconds) between two lanelets' endpoints
  /// at `max_speed`; the admissible A* heuristic.
  double HeuristicSeconds(ElementId from, ElementId to) const;

  const std::unordered_map<ElementId, Vec2>& node_positions() const {
    return end_positions_;
  }

  double max_speed_mps() const { return max_speed_mps_; }

 private:
  std::unordered_map<ElementId, std::vector<Edge>> edges_;
  /// Centerline end point of each lanelet (for heuristics).
  std::unordered_map<ElementId, Vec2> end_positions_;
  size_t num_edges_ = 0;
  double max_speed_mps_ = 13.89;
  static const std::vector<Edge> kNoEdges;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_ROUTING_GRAPH_H_
