file(REMOVE_RECURSE
  "libhdmap_creation.a"
)
