#ifndef HDMAP_CORE_WIRE_FRAME_H_
#define HDMAP_CORE_WIRE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace hdmap {

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) of `data`. Pass a previous
/// return value as `crc` to checksum a logical payload split across
/// multiple buffers. Implemented with a slice-by-8 kernel (eight table
/// lookups per 8-byte chunk, no inter-byte dependency chain), which is
/// what makes the verify-once-then-serve-zero-copy read paths cheap on
/// multi-hundred-megabyte checkpoints.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// Reference byte-at-a-time implementation. Same polynomial, same
/// result for every input — kept as the correctness oracle for the
/// slice-by-8 kernel (bench_micro_core's tier-2 CRC check compares the
/// two on random buffers and measures the speedup).
uint32_t Crc32Bytewise(std::string_view data, uint32_t crc = 0);

/// Size in bytes of the frame header prepended by WrapFrame: magic (u32),
/// frame version (u32), payload length (u32), payload CRC32 (u32), all
/// little-endian.
inline constexpr size_t kWireFrameHeaderSize = 16;

/// Current frame format version.
inline constexpr uint32_t kWireFrameVersion = 1;

/// True when `data` begins with the frame magic — i.e. it claims to be a
/// framed payload (WrapFrame output) rather than a bare legacy
/// serialization. A true result says nothing about integrity; use
/// UnwrapFrame for that.
bool IsFramed(std::string_view data);

/// Wraps `payload` in a checksummed frame: header (see
/// kWireFrameHeaderSize) followed by the payload bytes verbatim. The
/// output is a pure function of the payload, so framed serializations
/// stay byte-deterministic.
std::string WrapFrame(std::string_view payload);

/// Verifies `data` as a framed payload and returns a view of the payload
/// bytes (into `data`; no copy). kDataLoss when the header is truncated,
/// the magic or version is wrong, the payload length disagrees with the
/// buffer size, or the CRC32 does not match — i.e. on any truncation,
/// bit flip, or splice anywhere in the frame.
Result<std::string_view> UnwrapFrame(std::string_view data);

/// UnwrapFrame minus the checksum comparison: validates the header
/// (magic, version, length) and returns the payload view without
/// touching the payload bytes. For read paths that verified the CRC
/// once per generation (e.g. an mmap'd checkpoint at open) and then
/// serve the same immutable bytes zero-copy — re-hashing on every view
/// would defeat the point. Never use this on bytes that have not been
/// CRC-verified since they last changed.
Result<std::string_view> UnwrapFrameTrusted(std::string_view data);

}  // namespace hdmap

#endif  // HDMAP_CORE_WIRE_FRAME_H_
