// F2 — Fig. 2 (SLAMCU, Jo et al. [41]): histogram of position error for
// newly estimated map features over a 20 km highway sign study.
// Paper: mean 0.8 m, std 0.9 m, change-detection accuracy 96.12%.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "maintenance/slamcu.h"
#include "sim/change_injector.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("F2 (Fig. 2)",
                     "SLAMCU mapping error for new map features [41]",
                     "mean 0.8 m, std 0.9 m position error; 96.12% change "
                     "accuracy on a 20 km highway");

  Rng rng(202);
  HighwayOptions hopt;
  hopt.length = 20000.0;
  hopt.sign_spacing = 120.0;
  hopt.curve_amplitude = 0.08;
  auto hw = GenerateHighway(hopt, rng);
  if (!hw.ok()) return 1;
  HdMap mapped = *hw;   // The HD map the vehicle carries.
  HdMap world = *hw;    // The drifted real world.

  ChangeInjectorOptions copt;
  copt.landmark_add_prob = 0.10;
  copt.landmark_remove_prob = 0.08;
  copt.landmark_move_prob = 0.0;
  auto events = InjectChanges(copt, &world, rng);
  int true_adds = 0, true_removes = 0;
  for (const auto& ev : events) {
    if (ev.type == ChangeType::kLandmarkAdded) ++true_adds;
    if (ev.type == ChangeType::kLandmarkRemoved) ++true_removes;
  }

  // Drive the corridor with a modestly erroneous localization estimate
  // (the paper's measurement model solves localization alongside).
  LandmarkDetector::Options det_opt;
  det_opt.max_range = 60.0;
  det_opt.detection_prob = 0.92;
  det_opt.clutter_rate = 0.02;
  det_opt.range_noise_frac = 0.012;
  LandmarkDetector detector(det_opt);
  Slamcu slamcu(&mapped, {});

  // Follow a forward lane chain end to end, several passes.
  std::vector<const Lanelet*> chain;
  for (const auto& [id, ll] : world.lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      const Lanelet* cur = &ll;
      while (cur != nullptr) {
        chain.push_back(cur);
        cur = cur->successors.empty()
                  ? nullptr
                  : world.FindLanelet(cur->successors.front());
      }
      break;
    }
  }
  bench::Timer timer;
  for (int pass = 0; pass < 4; ++pass) {
    for (const Lanelet* lane : chain) {
      for (double s = 0.0; s < lane->Length(); s += 8.0) {
        Pose2 truth(lane->centerline.PointAt(s),
                    lane->centerline.HeadingAt(s));
        Pose2 estimated(truth.translation + Vec2{rng.Normal(0.0, 0.25),
                                                 rng.Normal(0.0, 0.25)},
                        truth.heading + rng.Normal(0.0, 0.004));
        slamcu.ProcessFrame(estimated, detector.Detect(world, truth, rng));
      }
    }
  }

  // Fig. 2: position-error histogram of confirmed new features.
  Histogram hist(0.0, 3.0, 15);
  RunningStats err;
  int matched_adds = 0;
  for (const auto& track : slamcu.ConfirmedAdditions()) {
    double best = 1e9;
    for (const auto& ev : events) {
      if (ev.type != ChangeType::kLandmarkAdded) continue;
      best = std::min(best, track.mean.DistanceTo(ev.new_position.xy()));
    }
    if (best < 5.0) {
      hist.Add(best);
      err.Add(best);
      ++matched_adds;
    }
  }

  // Change classification accuracy over all decisions: every injected
  // change (add/remove) and every untouched sign is one decision.
  auto removals = slamcu.ConfirmedRemovals();
  int correct = 0, total = 0;
  for (const auto& ev : events) {
    if (ev.type == ChangeType::kLandmarkAdded) {
      ++total;
      for (const auto& track : slamcu.ConfirmedAdditions()) {
        if (track.mean.DistanceTo(ev.new_position.xy()) < 3.0) {
          ++correct;
          break;
        }
      }
    } else if (ev.type == ChangeType::kLandmarkRemoved) {
      ++total;
      for (ElementId id : removals) {
        if (id == ev.element_id) {
          ++correct;
          break;
        }
      }
    }
  }
  // Untouched signs: predicted unchanged unless reported removed/moved.
  for (const auto& [id, lm] : mapped.landmarks()) {
    if (world.FindLandmark(id) == nullptr) continue;  // Was removed.
    bool moved = false;
    for (const auto& ev : events) {
      if (ev.element_id == id) moved = true;
    }
    if (moved) continue;
    ++total;
    bool falsely_removed = false;
    for (ElementId rid : removals) {
      if (rid == id) falsely_removed = true;
    }
    if (!falsely_removed) ++correct;
  }

  std::printf("\n  position-error histogram of new-feature estimates "
              "(the Fig. 2 shape):\n");
  std::printf("%s\n", hist.ToAscii(44).c_str());
  bench::PrintRow("new-feature position error mean (m)", "0.8",
                  bench::Fmt("%.2f", err.mean()));
  bench::PrintRow("new-feature position error std (m)", "0.9",
                  bench::Fmt("%.2f", err.stddev()));
  bench::PrintRow("change classification accuracy", "96.12%",
                  bench::Fmt("%.2f%%", 100.0 * correct /
                                           std::max(1, total)));
  std::printf("  corridor: 20 km, %d injected adds, %d removes; "
              "%d matched adds; runtime %.1f s\n\n",
              true_adds, true_removes, matched_adds, timer.Seconds());
  return 0;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
