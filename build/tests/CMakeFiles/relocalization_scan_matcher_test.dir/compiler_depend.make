# Empty compiler generated dependencies file for relocalization_scan_matcher_test.
# This may be replaced when dependencies are built.
