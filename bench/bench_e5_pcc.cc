// E5 — Chu et al. [61]: predictive cruise control with HD-map slope
// data. Paper: 8.73% fuel saving vs a factory adaptive cruise control
// over a 370 km route, at comparable travel time.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "planning/pcc.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

/// Builds a 370 km slope profile by sampling a generated hilly highway
/// and tiling its grade pattern (generating 370 km of map geometry
/// directly would only repeat the same statistics).
SlopeProfile Build370kmProfile(Rng& rng) {
  HighwayOptions opt;
  opt.length = 30000.0;
  opt.hill_amplitude = 35.0;
  opt.hill_wavelength = 2600.0;
  opt.curve_amplitude = 0.05;
  opt.sign_spacing = 1e9;
  auto hw = GenerateHighway(opt, rng);
  SlopeProfile profile;
  profile.station_step = 50.0;
  if (!hw.ok()) return profile;
  std::vector<ElementId> route;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      ElementId cur = id;
      while (cur != kInvalidId) {
        route.push_back(cur);
        const Lanelet* l = hw->FindLanelet(cur);
        cur = l->successors.empty() ? kInvalidId : l->successors.front();
      }
      break;
    }
  }
  auto base = BuildSlopeProfile(*hw, route, 50.0);
  if (!base.ok()) return profile;
  while (profile.Length() < 370000.0) {
    for (double g : base->grades) {
      profile.grades.push_back(g);
      if (profile.Length() >= 370000.0) break;
    }
  }
  return profile;
}

int Run() {
  bench::PrintHeader("E5",
                     "Predictive cruise control from HD-map slopes [61]",
                     "8.73% fuel saving vs factory ACC over a 370 km "
                     "route");

  Rng rng(1001);
  SlopeProfile profile = Build370kmProfile(rng);
  if (profile.grades.empty()) return 1;
  FuelModel model;
  PccOptions opt;
  opt.set_speed = 22.2;  // 80 km/h.

  bench::Timer timer;
  PccResult acc = SimulateConstantSpeed(profile, model, opt.set_speed);
  PccResult pcc = OptimizePcc(profile, model, opt);
  double solve_s = timer.Seconds();

  double saving =
      (acc.total_fuel_g - pcc.total_fuel_g) / acc.total_fuel_g * 100.0;
  bench::PrintRow("route length (km)", "370",
                  bench::Fmt("%.0f", profile.Length() / 1000.0));
  bench::PrintRow("ACC fuel (kg)", "(baseline)",
                  bench::Fmt("%.2f", acc.total_fuel_g / 1000.0));
  bench::PrintRow("PCC fuel (kg)", "(lower)",
                  bench::Fmt("%.2f", pcc.total_fuel_g / 1000.0));
  bench::PrintRow("fuel saving", "8.73%", bench::Fmt("%.2f%%", saving));
  bench::PrintRow("trip time change", "comparable",
                  bench::Fmt("%+.1f%%", (pcc.total_time_s / acc.total_time_s -
                                         1.0) *
                                            100.0));
  bench::PrintRow("DP solve time (s)", "(real-time capable)",
                  bench::Fmt("%.2f", solve_s));

  // Speed-band ablation: wider bands unlock more savings.
  std::printf("\n  speed-band ablation:\n    %-10s %-12s\n", "band",
              "saving (%)");
  for (double band : {0.05, 0.10, 0.15}) {
    PccOptions ab = opt;
    ab.speed_band = band;
    PccResult r = OptimizePcc(profile, model, ab);
    std::printf("    +-%.0f%%      %.2f\n", band * 100.0,
                (acc.total_fuel_g - r.total_fuel_g) / acc.total_fuel_g *
                    100.0);
  }
  std::printf("\n");
  return saving > 0.0 ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
