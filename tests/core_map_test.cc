#include <gtest/gtest.h>

#include "core/feature_layer.h"
#include "core/hd_map.h"
#include "core/map_patch.h"
#include "core/routing_graph.h"
#include "core/serialization.h"

namespace hdmap {
namespace {

/// Two consecutive straight lanelets along +x with boundaries.
HdMap MakeTwoLaneletMap() {
  HdMap map;
  LineFeature left;
  left.id = 100;
  left.type = LineType::kSolidLaneMarking;
  left.geometry = LineString({{0, 1.75}, {100, 1.75}});
  EXPECT_TRUE(map.AddLineFeature(left).ok());
  LineFeature right;
  right.id = 101;
  right.type = LineType::kRoadEdge;
  right.geometry = LineString({{0, -1.75}, {100, -1.75}});
  EXPECT_TRUE(map.AddLineFeature(right).ok());

  Lanelet a;
  a.id = 1;
  a.left_boundary_id = 100;
  a.right_boundary_id = 101;
  a.centerline = LineString({{0, 0}, {50, 0}});
  a.successors = {2};
  Lanelet b;
  b.id = 2;
  b.left_boundary_id = 100;
  b.right_boundary_id = 101;
  b.centerline = LineString({{50, 0}, {100, 0}});
  b.predecessors = {1};
  EXPECT_TRUE(map.AddLanelet(a).ok());
  EXPECT_TRUE(map.AddLanelet(b).ok());
  return map;
}

TEST(HdMapTest, AddAndFind) {
  HdMap map = MakeTwoLaneletMap();
  EXPECT_NE(map.FindLanelet(1), nullptr);
  EXPECT_NE(map.FindLineFeature(100), nullptr);
  EXPECT_EQ(map.FindLanelet(99), nullptr);
  EXPECT_EQ(map.NumElements(), 4u);
}

TEST(HdMapTest, RejectsInvalidAndDuplicateIds) {
  HdMap map;
  Landmark lm;
  lm.id = kInvalidId;
  EXPECT_EQ(map.AddLandmark(lm).code(), StatusCode::kInvalidArgument);
  lm.id = 5;
  EXPECT_TRUE(map.AddLandmark(lm).ok());
  EXPECT_EQ(map.AddLandmark(lm).code(), StatusCode::kAlreadyExists);
}

TEST(HdMapTest, RejectsDegenerateLanelet) {
  HdMap map;
  Lanelet ll;
  ll.id = 1;
  ll.centerline = LineString({{0, 0}});
  EXPECT_EQ(map.AddLanelet(ll).code(), StatusCode::kInvalidArgument);
}

TEST(HdMapTest, MatchToLane) {
  HdMap map = MakeTwoLaneletMap();
  auto match = map.MatchToLane({20.0, 0.5});
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->lanelet_id, 1);
  EXPECT_NEAR(match->arc_length, 20.0, 1e-9);
  EXPECT_NEAR(match->signed_offset, 0.5, 1e-9);

  auto match2 = map.MatchToLane({80.0, -0.3});
  ASSERT_TRUE(match2.ok());
  EXPECT_EQ(match2->lanelet_id, 2);
  EXPECT_NEAR(match2->signed_offset, -0.3, 1e-9);

  EXPECT_FALSE(map.MatchToLane({20.0, 500.0}).ok());
}

TEST(HdMapTest, LaneletsContaining) {
  HdMap map = MakeTwoLaneletMap();
  auto in_lane = map.LaneletsContaining({20.0, 1.0});
  ASSERT_EQ(in_lane.size(), 1u);
  EXPECT_EQ(in_lane[0], 1);
  EXPECT_TRUE(map.LaneletsContaining({20.0, 10.0}).empty());
}

TEST(HdMapTest, LandmarksNear) {
  HdMap map = MakeTwoLaneletMap();
  Landmark s1;
  s1.id = 200;
  s1.position = {10, 5, 2};
  Landmark s2;
  s2.id = 201;
  s2.position = {90, 5, 2};
  ASSERT_TRUE(map.AddLandmark(s1).ok());
  ASSERT_TRUE(map.AddLandmark(s2).ok());
  auto near = map.LandmarksNear({10, 0}, 10.0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 200);
  EXPECT_EQ(map.LandmarksNear({50, 0}, 100.0).size(), 2u);
}

TEST(HdMapTest, RemoveAndMoveLandmark) {
  HdMap map;
  Landmark lm;
  lm.id = 7;
  lm.position = {1, 2, 3};
  ASSERT_TRUE(map.AddLandmark(lm).ok());
  ASSERT_TRUE(map.MoveLandmark(7, {4, 5, 6}).ok());
  EXPECT_EQ(map.FindLandmark(7)->position, (Vec3{4, 5, 6}));
  ASSERT_TRUE(map.RemoveLandmark(7).ok());
  EXPECT_EQ(map.FindLandmark(7), nullptr);
  EXPECT_EQ(map.RemoveLandmark(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(map.MoveLandmark(7, {0, 0, 0}).code(), StatusCode::kNotFound);
}

TEST(HdMapTest, IndexRebuildsAfterMutation) {
  HdMap map = MakeTwoLaneletMap();
  EXPECT_EQ(map.LandmarksNear({10, 0}, 10.0).size(), 0u);
  Landmark lm;
  lm.id = 300;
  lm.position = {10, 2, 0};
  ASSERT_TRUE(map.AddLandmark(lm).ok());
  EXPECT_EQ(map.LandmarksNear({10, 0}, 10.0).size(), 1u);  // Fresh index.
}

TEST(HdMapTest, EffectiveSpeedLimit) {
  HdMap map = MakeTwoLaneletMap();
  EXPECT_NEAR(map.EffectiveSpeedLimit(1), 13.89, 1e-9);
  RegulatoryElement reg;
  reg.id = 500;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {1};
  ASSERT_TRUE(map.AddRegulatoryElement(reg).ok());
  map.FindMutableLanelet(1)->regulatory_ids.push_back(500);
  EXPECT_NEAR(map.EffectiveSpeedLimit(1), 8.0, 1e-9);
  EXPECT_EQ(map.EffectiveSpeedLimit(999), 0.0);
}

TEST(HdMapTest, ValidateDetectsDanglingSuccessor) {
  HdMap map = MakeTwoLaneletMap();
  EXPECT_TRUE(map.Validate().ok());
  map.FindMutableLanelet(1)->successors.push_back(999);
  EXPECT_EQ(map.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(HdMapTest, ValidateDetectsAsymmetricTopology) {
  HdMap map = MakeTwoLaneletMap();
  map.FindMutableLanelet(2)->predecessors.clear();
  EXPECT_FALSE(map.Validate().ok());
}

TEST(LaneletTest, ElevationProfileInterpolation) {
  Lanelet ll;
  ll.centerline = LineString({{0, 0}, {100, 0}});
  ll.elevation_profile = {0.0, 10.0, 0.0};
  EXPECT_NEAR(ll.ElevationAt(0.0), 0.0, 1e-9);
  EXPECT_NEAR(ll.ElevationAt(50.0), 10.0, 1e-9);
  EXPECT_NEAR(ll.ElevationAt(25.0), 5.0, 1e-9);
  EXPECT_NEAR(ll.ElevationAt(100.0), 0.0, 1e-9);
  EXPECT_GT(ll.GradeAt(25.0), 0.0);
  EXPECT_LT(ll.GradeAt(75.0), 0.0);
}

TEST(LaneletTest, EmptyElevationIsFlat) {
  Lanelet ll;
  ll.centerline = LineString({{0, 0}, {100, 0}});
  EXPECT_EQ(ll.ElevationAt(50.0), 0.0);
  EXPECT_EQ(ll.GradeAt(50.0), 0.0);
}

TEST(MapPatchTest, ApplyAddRemoveMove) {
  HdMap map;
  Landmark lm;
  lm.id = 1;
  lm.position = {0, 0, 0};
  ASSERT_TRUE(map.AddLandmark(lm).ok());
  Landmark lm2;
  lm2.id = 2;
  lm2.position = {5, 5, 0};
  ASSERT_TRUE(map.AddLandmark(lm2).ok());

  MapPatch patch;
  Landmark added;
  added.id = 3;
  added.position = {9, 9, 0};
  patch.added_landmarks.push_back(added);
  patch.removed_landmarks.push_back(1);
  patch.moved_landmarks.push_back({2, {6, 6, 0}});
  ASSERT_TRUE(ApplyPatch(patch, &map).ok());
  EXPECT_EQ(map.FindLandmark(1), nullptr);
  EXPECT_EQ(map.FindLandmark(2)->position, (Vec3{6, 6, 0}));
  EXPECT_NE(map.FindLandmark(3), nullptr);
}

TEST(MapPatchTest, ApplyFailsOnMissingTarget) {
  HdMap map;
  MapPatch patch;
  patch.removed_landmarks.push_back(42);
  EXPECT_EQ(ApplyPatch(patch, &map).code(), StatusCode::kNotFound);
}

TEST(MapPatchTest, DiffLandmarksRoundTrip) {
  HdMap before;
  Landmark a;
  a.id = 1;
  a.position = {0, 0, 0};
  Landmark b;
  b.id = 2;
  b.position = {5, 0, 0};
  ASSERT_TRUE(before.AddLandmark(a).ok());
  ASSERT_TRUE(before.AddLandmark(b).ok());

  HdMap after = before;
  ASSERT_TRUE(after.RemoveLandmark(1).ok());
  ASSERT_TRUE(after.MoveLandmark(2, {7, 0, 0}).ok());
  Landmark c;
  c.id = 3;
  c.position = {1, 1, 0};
  ASSERT_TRUE(after.AddLandmark(c).ok());

  MapPatch patch = DiffLandmarks(before, after);
  EXPECT_EQ(patch.added_landmarks.size(), 1u);
  EXPECT_EQ(patch.removed_landmarks.size(), 1u);
  EXPECT_EQ(patch.moved_landmarks.size(), 1u);
  EXPECT_EQ(patch.NumChanges(), 3u);

  ASSERT_TRUE(ApplyPatch(patch, &before).ok());
  EXPECT_TRUE(DiffLandmarks(before, after).IsEmpty());
}

TEST(HdMapTest, ReplaceAndRemoveLanelet) {
  HdMap map = MakeTwoLaneletMap();
  Lanelet repl = *map.FindLanelet(1);
  repl.centerline = LineString({{0, 0.5}, {50, 0.5}});
  ASSERT_TRUE(map.ReplaceLanelet(repl).ok());
  EXPECT_NEAR(map.FindLanelet(1)->centerline[0].y, 0.5, 1e-12);
  // The spatial index reflects the new geometry.
  auto match = map.MatchToLane({20.0, 0.5});
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->lanelet_id, 1);
  EXPECT_NEAR(match->signed_offset, 0.0, 1e-9);

  Lanelet missing = repl;
  missing.id = 999;
  EXPECT_EQ(map.ReplaceLanelet(missing).code(), StatusCode::kNotFound);
  Lanelet degenerate = repl;
  degenerate.centerline = LineString({{0, 0}});
  EXPECT_EQ(map.ReplaceLanelet(degenerate).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(map.RemoveLanelet(2).ok());
  EXPECT_EQ(map.FindLanelet(2), nullptr);
  EXPECT_EQ(map.RemoveLanelet(2).code(), StatusCode::kNotFound);
  // Removal does not touch referencing elements; Validate reports the
  // dangling successor edge the caller now owns.
  EXPECT_FALSE(map.Validate().ok());
}

TEST(HdMapTest, ReplaceAndRemoveRegulatoryElement) {
  HdMap map = MakeTwoLaneletMap();
  RegulatoryElement reg;
  reg.id = 500;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {1};
  ASSERT_TRUE(map.AddRegulatoryElement(reg).ok());
  map.FindMutableLanelet(1)->regulatory_ids.push_back(500);

  reg.speed_limit_mps = 5.0;
  ASSERT_TRUE(map.ReplaceRegulatoryElement(reg).ok());
  EXPECT_NEAR(map.EffectiveSpeedLimit(1), 5.0, 1e-9);
  reg.id = 501;
  EXPECT_EQ(map.ReplaceRegulatoryElement(reg).code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(map.RemoveRegulatoryElement(500).ok());
  EXPECT_EQ(map.FindRegulatoryElement(500), nullptr);
  EXPECT_EQ(map.RemoveRegulatoryElement(500).code(), StatusCode::kNotFound);
}

TEST(MapPatchTest, ApplyRelationalChanges) {
  HdMap map = MakeTwoLaneletMap();
  RegulatoryElement reg;
  reg.id = 500;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {1, 2};
  ASSERT_TRUE(map.AddRegulatoryElement(reg).ok());

  MapPatch patch;
  Lanelet moved = *map.FindLanelet(1);
  moved.centerline = LineString({{0, 1.0}, {50, 1.0}});
  patch.updated_lanelets.push_back(moved);
  reg.speed_limit_mps = 6.0;
  patch.updated_regulatory_elements.push_back(reg);
  EXPECT_EQ(patch.NumChanges(), 2u);
  ASSERT_TRUE(ApplyPatch(patch, &map).ok());
  EXPECT_NEAR(map.FindLanelet(1)->centerline[0].y, 1.0, 1e-12);
  EXPECT_NEAR(map.FindRegulatoryElement(500)->speed_limit_mps, 6.0, 1e-12);

  MapPatch removal;
  removal.removed_regulatory_elements.push_back(500);
  removal.removed_lanelets.push_back(2);
  ASSERT_TRUE(ApplyPatch(removal, &map).ok());
  EXPECT_EQ(map.FindRegulatoryElement(500), nullptr);
  EXPECT_EQ(map.FindLanelet(2), nullptr);

  MapPatch bad;
  bad.removed_lanelets.push_back(2);
  EXPECT_EQ(ApplyPatch(bad, &map).code(), StatusCode::kNotFound);
}

TEST(MapPatchTest, SerializeRoundTripsRelationalSections) {
  MapPatch patch;
  Landmark lm;
  lm.id = 9;
  lm.position = {1, 2, 3};
  patch.added_landmarks.push_back(lm);
  Lanelet ll;
  ll.id = 4;
  ll.centerline = LineString({{0, 0}, {10, 0}});
  ll.successors = {5};
  ll.regulatory_ids = {500};
  patch.updated_lanelets.push_back(ll);
  patch.removed_lanelets.push_back(6);
  RegulatoryElement reg;
  reg.id = 500;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 7.5;
  reg.lanelet_ids = {4};
  patch.updated_regulatory_elements.push_back(reg);
  patch.removed_regulatory_elements.push_back(501);

  auto decoded = DeserializePatch(SerializePatch(patch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->NumChanges(), patch.NumChanges());
  ASSERT_EQ(decoded->updated_lanelets.size(), 1u);
  EXPECT_EQ(decoded->updated_lanelets[0].id, 4);
  EXPECT_EQ(decoded->updated_lanelets[0].successors, ll.successors);
  ASSERT_EQ(decoded->updated_regulatory_elements.size(), 1u);
  EXPECT_NEAR(decoded->updated_regulatory_elements[0].speed_limit_mps, 7.5,
              1e-12);
  EXPECT_EQ(decoded->removed_lanelets, patch.removed_lanelets);
  EXPECT_EQ(decoded->removed_regulatory_elements,
            patch.removed_regulatory_elements);
}

TEST(FeatureLayerTest, ObservationsConvergeAndPromote) {
  FeatureLayer layer("signs");
  for (int i = 0; i < 10; ++i) {
    layer.AddObservation(1, LandmarkType::kTrafficSign,
                         {10.0 + 0.1 * (i % 2), 5.0, 2.0});
  }
  const LayerFeature* f = layer.Find(1);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->observation_count, 10);
  EXPECT_NEAR(f->position.x, 10.05, 1e-9);
  EXPECT_GT(f->confidence, 0.8);
  auto promotable = layer.Promotable(0.8);
  ASSERT_EQ(promotable.size(), 1u);
  EXPECT_EQ(promotable[0].id, 1);
}

TEST(FeatureLayerTest, LowConfidenceNotPromoted) {
  FeatureLayer layer("signs");
  layer.AddObservation(1, LandmarkType::kTrafficSign, {0, 0, 0});
  EXPECT_TRUE(layer.Promotable(0.8).empty());
}

TEST(FeatureLayerTest, MergeCombinesWeighted) {
  FeatureLayer a("a"), b("b");
  for (int i = 0; i < 3; ++i) {
    a.AddObservation(1, LandmarkType::kTrafficSign, {0, 0, 0});
  }
  b.AddObservation(1, LandmarkType::kTrafficSign, {4, 0, 0});
  b.AddObservation(2, LandmarkType::kPole, {9, 9, 0});
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_NEAR(a.Find(1)->position.x, 1.0, 1e-9);  // (3*0 + 1*4) / 4.
  EXPECT_EQ(a.Find(1)->observation_count, 4);
  EXPECT_NE(a.Find(2), nullptr);
}

TEST(RoutingGraphTest, BuildFromTopology) {
  HdMap map = MakeTwoLaneletMap();
  RoutingGraph g = RoutingGraph::Build(map);
  EXPECT_EQ(g.NumNodes(), 2u);
  ASSERT_EQ(g.OutEdges(1).size(), 1u);
  EXPECT_EQ(g.OutEdges(1)[0].to, 2);
  EXPECT_FALSE(g.OutEdges(1)[0].lane_change);
  // 50 m at 13.89 m/s.
  EXPECT_NEAR(g.OutEdges(1)[0].cost, 50.0 / 13.89, 1e-6);
  EXPECT_TRUE(g.OutEdges(2).empty());
  EXPECT_TRUE(g.OutEdges(99).empty());
}

TEST(RoutingGraphTest, LaneChangeEdgesAndHeuristic) {
  HdMap map = MakeTwoLaneletMap();
  Lanelet c;
  c.id = 3;
  c.centerline = LineString({{0, 3.5}, {50, 3.5}});
  ASSERT_TRUE(map.AddLanelet(c).ok());
  map.FindMutableLanelet(1)->left_neighbor = 3;
  map.FindMutableLanelet(3)->right_neighbor = 1;
  RoutingGraph g = RoutingGraph::Build(map, 2.0);
  bool found_lane_change = false;
  for (const auto& e : g.OutEdges(1)) {
    if (e.to == 3) {
      found_lane_change = true;
      EXPECT_TRUE(e.lane_change);
    }
  }
  EXPECT_TRUE(found_lane_change);
  EXPECT_GE(g.HeuristicSeconds(1, 2), 0.0);
  EXPECT_EQ(g.HeuristicSeconds(1, 1), 0.0);
}

}  // namespace
}  // namespace hdmap
