#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geometry/aabb.h"
#include "geometry/line_string.h"
#include "geometry/polygon.h"
#include "geometry/pose2.h"
#include "geometry/pose3.h"
#include "geometry/segment.h"
#include "geometry/vec2.h"
#include "geometry/vec3.h"

namespace hdmap {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).Norm(), 5.0);
}

TEST(Vec2Test, RotationAndPerp) {
  Vec2 x{1, 0};
  Vec2 r = x.Rotated(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_EQ(x.Perp(), (Vec2{0, 1}));
  EXPECT_NEAR((Vec2{1, 1}).Angle(), kPi / 4, 1e-12);
}

TEST(Vec2Test, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec2{}.Normalized(), (Vec2{0, 0}));
  EXPECT_NEAR((Vec2{3, 4}).Normalized().Norm(), 1.0, 1e-12);
}

TEST(Vec3Test, CrossAndNorm) {
  Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.Cross(y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 2}).Norm(), 3.0);
  EXPECT_EQ((Vec3{1, 2, 3}).xy(), (Vec2{1, 2}));
}

TEST(Pose2Test, TransformRoundTrip) {
  Pose2 pose(10.0, -3.0, 0.7);
  Vec2 local{2.5, 1.0};
  Vec2 world = pose.TransformPoint(local);
  Vec2 back = pose.InverseTransformPoint(world);
  EXPECT_NEAR(back.x, local.x, 1e-12);
  EXPECT_NEAR(back.y, local.y, 1e-12);
}

TEST(Pose2Test, ComposeWithInverseIsIdentity) {
  Pose2 pose(4.0, 5.0, -1.2);
  Pose2 ident = pose.Compose(pose.Inverse());
  EXPECT_NEAR(ident.translation.x, 0.0, 1e-12);
  EXPECT_NEAR(ident.translation.y, 0.0, 1e-12);
  EXPECT_NEAR(ident.heading, 0.0, 1e-12);
}

TEST(Pose2Test, RelativeTo) {
  Pose2 a(1.0, 1.0, 0.3);
  Pose2 b(2.0, -1.0, 1.0);
  Pose2 rel = a.RelativeTo(b);
  Pose2 recomposed = b.Compose(rel);
  EXPECT_NEAR(recomposed.translation.x, a.translation.x, 1e-12);
  EXPECT_NEAR(recomposed.translation.y, a.translation.y, 1e-12);
  EXPECT_NEAR(recomposed.heading, a.heading, 1e-12);
}

TEST(Pose3Test, YawOnlyMatchesPose2) {
  Pose2 p2(3.0, 4.0, 0.6);
  Pose3 p3 = Pose3::FromPose2(p2, 1.5);
  Vec3 local{1.0, 2.0, 0.0};
  Vec3 world = p3.TransformPoint(local);
  Vec2 expected = p2.TransformPoint(local.xy());
  EXPECT_NEAR(world.x, expected.x, 1e-12);
  EXPECT_NEAR(world.y, expected.y, 1e-12);
  EXPECT_NEAR(world.z, 1.5, 1e-12);
}

TEST(Pose3Test, PitchLiftsForwardPoint) {
  // Positive pitch (nose down in Z-Y-X aero convention maps +x toward -z).
  Pose3 p(Vec3{0, 0, 0}, 0.0, 0.3, 0.0);
  Vec3 world = p.TransformPoint({1.0, 0.0, 0.0});
  EXPECT_NEAR(world.z, -std::sin(0.3), 1e-12);
  EXPECT_NEAR(world.x, std::cos(0.3), 1e-12);
}

TEST(SegmentTest, ClosestPointAndDistance) {
  Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.DistanceTo({5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({-3, 4}), 5.0);  // Clamped to endpoint.
  EXPECT_EQ(s.ClosestPoint({5, 3}), (Vec2{5, 0}));
}

TEST(SegmentTest, Intersection) {
  Segment a({0, 0}, {10, 10});
  Segment b({0, 10}, {10, 0});
  auto hit = a.Intersect(b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 5.0, 1e-12);
  EXPECT_NEAR(hit->y, 5.0, 1e-12);
  EXPECT_FALSE(a.Intersect(Segment({20, 0}, {20, 10})).has_value());
  // Parallel.
  EXPECT_FALSE(a.Intersect(Segment({1, 0}, {11, 10})).has_value());
}

TEST(AabbTest, ExtendContainsIntersects) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  box.Extend({1, 1});
  box.Extend({4, 3});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({2, 2}));
  EXPECT_FALSE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Intersects(Aabb({3, 2}, {9, 9})));
  EXPECT_FALSE(box.Intersects(Aabb({5, 5}, {9, 9})));
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
  EXPECT_DOUBLE_EQ(box.DistanceTo({1, -3}), 4.0);
  EXPECT_DOUBLE_EQ(box.DistanceTo({2, 2}), 0.0);
}

LineString MakeL() {
  // L-shaped: (0,0)->(10,0)->(10,10).
  return LineString({{0, 0}, {10, 0}, {10, 10}});
}

TEST(LineStringTest, LengthAndPointAt) {
  LineString ls = MakeL();
  EXPECT_DOUBLE_EQ(ls.Length(), 20.0);
  EXPECT_EQ(ls.PointAt(0.0), (Vec2{0, 0}));
  EXPECT_EQ(ls.PointAt(5.0), (Vec2{5, 0}));
  EXPECT_EQ(ls.PointAt(15.0), (Vec2{10, 5}));
  EXPECT_EQ(ls.PointAt(99.0), (Vec2{10, 10}));  // Clamped.
  EXPECT_EQ(ls.PointAt(-1.0), (Vec2{0, 0}));
}

TEST(LineStringTest, TangentAndHeading) {
  LineString ls = MakeL();
  EXPECT_NEAR(ls.HeadingAt(5.0), 0.0, 1e-12);
  EXPECT_NEAR(ls.HeadingAt(15.0), kPi / 2, 1e-12);
}

TEST(LineStringTest, ProjectInterior) {
  LineString ls = MakeL();
  LineStringProjection p = ls.Project({5.0, 2.0});
  EXPECT_NEAR(p.arc_length, 5.0, 1e-12);
  EXPECT_NEAR(p.signed_offset, 2.0, 1e-12);  // Left of travel direction.
  EXPECT_NEAR(p.distance, 2.0, 1e-12);
  LineStringProjection q = ls.Project({5.0, -2.0});
  EXPECT_NEAR(q.signed_offset, -2.0, 1e-12);
}

TEST(LineStringTest, ProjectBeyondEndClamps) {
  LineString ls = MakeL();
  LineStringProjection p = ls.Project({10.0, 15.0});
  EXPECT_NEAR(p.arc_length, 20.0, 1e-12);
  EXPECT_NEAR(p.distance, 5.0, 1e-12);
}

TEST(LineStringTest, ResampleKeepsShapeAndLength) {
  LineString ls = MakeL();
  LineString rs = ls.Resampled(1.0);
  EXPECT_NEAR(rs.Length(), 20.0, 0.5);
  EXPECT_GE(rs.size(), 19u);
  for (const Vec2& p : rs.points()) {
    EXPECT_LT(ls.DistanceTo(p), 0.2);
  }
}

TEST(LineStringTest, SimplifyRemovesCollinear) {
  std::vector<Vec2> pts;
  for (int i = 0; i <= 100; ++i) pts.push_back({i * 1.0, 0.0});
  pts.push_back({100.0, 50.0});
  LineString dense(pts);
  LineString simple = dense.Simplified(0.01);
  EXPECT_EQ(simple.size(), 3u);
  EXPECT_NEAR(simple.Length(), dense.Length(), 1e-9);
}

TEST(LineStringTest, OffsetShiftsLeft) {
  LineString ls({{0, 0}, {10, 0}});
  LineString off = ls.Offset(2.0);
  EXPECT_NEAR(off[0].y, 2.0, 1e-12);
  EXPECT_NEAR(off[1].y, 2.0, 1e-12);
  LineString neg = ls.Offset(-1.5);
  EXPECT_NEAR(neg[0].y, -1.5, 1e-12);
}

TEST(LineStringTest, ReversedFlipsOrder) {
  LineString ls = MakeL();
  LineString rev = ls.Reversed();
  EXPECT_EQ(rev.front(), ls.back());
  EXPECT_EQ(rev.back(), ls.front());
  EXPECT_DOUBLE_EQ(rev.Length(), ls.Length());
}

TEST(LineStringTest, CurvatureOfCircleApproximation) {
  // Sampled circle of radius 50: curvature ~ 1/50.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 90; ++i) {
    double a = DegToRad(static_cast<double>(i));
    pts.push_back({50.0 * std::cos(a), 50.0 * std::sin(a)});
  }
  LineString arc(pts);
  EXPECT_NEAR(arc.CurvatureAt(arc.Length() / 2), 1.0 / 50.0, 2e-3);
}

TEST(LineStringTest, AppendMaintainsArcLength) {
  LineString ls;
  ls.Append({0, 0});
  ls.Append({3, 4});
  ls.Append({3, 10});
  EXPECT_DOUBLE_EQ(ls.Length(), 11.0);
}

TEST(PolygonTest, AreaCentroidContains) {
  Polygon square({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_DOUBLE_EQ(square.Area(), 16.0);
  EXPECT_DOUBLE_EQ(square.SignedArea(), 16.0);  // CCW.
  Vec2 c = square.Centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 2.0, 1e-12);
  EXPECT_TRUE(square.Contains({1, 1}));
  EXPECT_FALSE(square.Contains({5, 5}));
  EXPECT_DOUBLE_EQ(square.BoundaryDistanceTo({2, -3}), 3.0);
}

TEST(PolygonTest, ClockwiseHasNegativeSignedArea) {
  Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_LT(cw.SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 16.0);
}

TEST(PolygonTest, ConvexHull) {
  std::vector<Vec2> pts = {{0, 0}, {4, 0}, {4, 4}, {0, 4},
                           {2, 2}, {1, 1}, {3, 2}};
  Polygon hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.Area(), 16.0);
}

}  // namespace
}  // namespace hdmap
