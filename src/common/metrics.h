#ifndef HDMAP_COMMON_METRICS_H_
#define HDMAP_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/statistics.h"

namespace hdmap {

/// Monotonic counter (events served, cache hits, errors). Increment is
/// lock-free; safe from any thread. Deliberately has no Reset(): exported
/// snapshots must be monotonic (Prometheus counters assume it), so tests
/// assert on deltas instead of zeroing shared state.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (snapshot version, queue depth, age). Set/value are
/// lock-free; safe from any thread.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency distribution: exact count/mean/min/max via RunningStats plus
/// approximate percentiles from a log10-bucketed Histogram covering
/// [1 us, 10 s) (sub-microsecond samples land in the underflow bucket,
/// 10 s+ in overflow). Bucketing keeps memory constant no matter how many
/// samples arrive; percentile error is bounded by the bucket width
/// (~5% relative).
///
/// The hot path is sharded: each recording thread hashes (by a stable
/// thread ordinal) to one of kShards independent {mutex, stats, histogram}
/// shards, so concurrent Record() calls from different threads do not
/// contend on one lock. Readers merge the shards under the per-shard
/// locks — reads are O(shards * bins) but off the hot path.
class LatencyHistogram {
 public:
  // Log-scale bucketing: 1/32 of a decade per bucket over [1 us, 10 s) —
  // 7 decades, 224 buckets, ±4% relative resolution.
  static constexpr double kLogLo = -6.0;
  static constexpr double kLogHi = 1.0;
  static constexpr int kLogBins = 224;

  LatencyHistogram() = default;

  /// Records one latency sample, in seconds. Negative samples are ignored.
  void Record(double seconds);

  size_t count() const;
  double mean_seconds() const;
  double min_seconds() const;
  double max_seconds() const;
  /// Total recorded time (count * mean), for Prometheus `_sum`.
  double sum_seconds() const;

  /// Approximate p-th percentile (p in [0, 100]) in seconds, interpolated
  /// within the log-scale bucket; 0 with no samples. Percentiles that fall
  /// in the underflow/overflow buckets clamp to the range edge (1 us /
  /// 10 s).
  double ApproxPercentileSeconds(double p) const;

  /// One cumulative bucket of the exported distribution: the number of
  /// samples <= le_seconds.
  struct Bucket {
    double le_seconds = 0.0;  ///< Upper bound; +inf for the final bucket.
    uint64_t cumulative_count = 0;
  };

  /// Prometheus-style cumulative buckets, coarsened to 1/4-decade bounds
  /// (10^-6, 10^-5.75, ..., 10^1) plus a terminal +Inf bucket equal to
  /// count(). Counts are cumulative and monotonically non-decreasing;
  /// sub-microsecond samples are included from the first bucket up.
  std::vector<Bucket> CumulativeBuckets() const;

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    RunningStats stats;
    Histogram log_histogram{kLogLo, kLogHi, kLogBins};
  };

  RunningStats MergedStats() const;
  Histogram MergedHistogram() const;

  Shard shards_[kShards];
};

/// Named registry of counters, gauges, and latency histograms: the single
/// observability surface for the serving stack (MapService endpoints,
/// TileStore cache, patch publishing). Get* registers on first use and
/// returns a pointer that stays valid for the registry's lifetime, so hot
/// paths resolve names once and then touch only the instrument. All
/// methods are thread-safe.
///
/// Naming convention: `subsystem.verb` with an optional `{TAG}` suffix for
/// per-dimension series (e.g. "map_service.errors{DATA_LOSS}"). The
/// Prometheus exporter maps the tag to a `tag="..."` label so all series
/// of one instrument form a single metric family.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetLatency(const std::string& name);

  /// Attaches help text to an instrument (by its unsuffixed name, without
  /// any `{TAG}`); emitted as the Prometheus `# HELP` line and the JSON
  /// "help" field.
  void SetHelp(const std::string& name, std::string help);

  /// One exported metric value. Latencies export count/mean/p50/p99.
  struct Sample {
    std::string name;  ///< Instrument name plus suffix, e.g. "x.p99_ms".
    double value = 0.0;
  };

  /// Flattened snapshot of every registered instrument, sorted by name.
  /// Latency values are exported in milliseconds.
  std::vector<Sample> Snapshot() const;

  /// Human-readable dump, one "name value" row per Sample.
  std::string Render() const;

  /// Prometheus text exposition format (version 0.0.4): every instrument
  /// as a metric family with `# HELP`/`# TYPE` annotations. Counters get
  /// a `_total` suffix, latencies render as `_seconds` histograms with
  /// cumulative `_bucket{le="..."}` series terminated by `+Inf`, plus
  /// `_sum`/`_count`. Instrument names are sanitized ('.' -> '_') and
  /// prefixed `hdmap_`; a `{TAG}` suffix becomes a `tag` label with
  /// backslash/quote/newline escaping per the exposition format.
  std::string RenderPrometheus() const;

  /// Stable JSON snapshot: {"counters":[...],"gauges":[...],
  /// "histograms":[...]}, sorted by name, each entry annotated with its
  /// type and unit (latencies in seconds). Keys and ordering are part of
  /// the contract — scrapers may depend on them.
  std::string RenderJson() const;

  /// Every registered instrument name (raw `subsystem.verb{TAG}` form,
  /// before Prometheus sanitization), sorted. The metrics-name lint test
  /// walks this to catch malformed registrations before they reach a
  /// scraper.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: pointers handed out by Get* stay stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
  std::map<std::string, std::string> help_;
};

/// RAII timer: records the elapsed wall time into a LatencyHistogram when
/// it goes out of scope. A null histogram disables it (zero-cost guard for
/// optional metrics).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram)
      : histogram_(histogram),
        start_(histogram == nullptr
                   ? std::chrono::steady_clock::time_point{}
                   : std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_METRICS_H_
