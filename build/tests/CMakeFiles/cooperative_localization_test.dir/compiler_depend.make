# Empty compiler generated dependencies file for cooperative_localization_test.
# This may be replaced when dependencies are built.
