file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_incremental_fusion.dir/bench_e10_incremental_fusion.cc.o"
  "CMakeFiles/bench_e10_incremental_fusion.dir/bench_e10_incremental_fusion.cc.o.d"
  "bench_e10_incremental_fusion"
  "bench_e10_incremental_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_incremental_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
