#ifndef HDMAP_CORE_RASTER_FILTER_H_
#define HDMAP_CORE_RASTER_FILTER_H_

#include "core/raster_layer.h"

namespace hdmap {

/// Weighted mode filter over a semantic raster (software realization of
/// the WMoF VLSI architecture of Chen et al. [19]: each output cell
/// takes the distance-weighted mode of its neighborhood's labels).
/// Removes salt noise from observation rasters while preserving thin
/// structures better than majority voting.
struct WmofOptions {
  int radius = 1;               ///< Neighborhood radius in cells.
  /// Weight of a neighbor at Chebyshev distance d is 1 / (1 + d).
  /// The center cell gets this extra multiplier (self-confidence).
  double center_boost = 1.5;
  /// Minimum total weight of the winning label to emit a non-empty cell.
  /// Must exceed the lone-center weight (center_boost) so isolated noise
  /// cells are suppressed: a surviving cell needs at least one agreeing
  /// neighbor.
  double min_weight = 1.6;
};

/// Applies the weighted mode filter; per-bit labels are filtered jointly
/// (the mode is over the full 8-bit label value, as in [19]).
SemanticRaster WeightedModeFilter(const SemanticRaster& input,
                                  const WmofOptions& options = {});

/// Upsamples `input` by an integer factor with the weighted mode filter
/// as the interpolation kernel (the Full-HD depth-map upsampling use
/// case of [19], applied to semantic rasters).
SemanticRaster UpsampleModeFilter(const SemanticRaster& input, int factor,
                                  const WmofOptions& options = {});

}  // namespace hdmap

#endif  // HDMAP_CORE_RASTER_FILTER_H_
