#include "replication/node.h"

#include <utility>

#include "core/serialization.h"

namespace hdmap {

ReplicationNode::ReplicationNode(Options options)
    : opts_(std::move(options)),
      service_(opts_.service),
      log_(opts_.log_capacity),
      events_(128),
      replica_([this] {
        Replica::Options ro;
        ro.service = &service_;
        ro.log = &log_;
        ro.term = &term_;
        ro.faults = opts_.faults;
        ro.metrics = &service_.metrics();
        ro.on_higher_term = [this](uint64_t new_term) { StepDown(new_term); };
        ro.on_publish_applied = [this](uint64_t seq) {
          std::lock_guard<std::mutex> lock(write_mu_);
          last_publish_seq_ = seq;
          log_.TrimToCapacity(last_publish_seq_ + 1);
        };
        ro.on_catchup_installed = [this](uint64_t resume_seq) {
          std::lock_guard<std::mutex> lock(write_mu_);
          last_publish_seq_ = resume_seq;
          resync_needed_.store(false);
        };
        ro.consume_resync = [this] { return resync_needed_.exchange(false); };
        return ro;
      }()) {}

ReplicationNode::~ReplicationNode() {
  Halt();
}

Status ReplicationNode::Start(const HdMap& initial_map) {
  HDMAP_RETURN_IF_ERROR(service_.Init(initial_map));
  TileServer::Options server_options = opts_.server;
  server_options.replication = &replica_;
  if (server_options.fault_injector == nullptr) {
    server_options.fault_injector = opts_.faults;
  }
  server_ = std::make_unique<TileServer>(service_, server_options);
  HDMAP_RETURN_IF_ERROR(server_->Start());
  opts_.server.port = server_->port();  // keep the resolved port on restart
  role_.store(Role::kFollower);
  replica_.ResetContact();
  alive_.store(true);
  return Status::Ok();
}

void ReplicationNode::Halt() {
  alive_.store(false);
  // Stop the server before taking write_mu_: a worker applying a publish
  // marker re-enters the node (on_publish_applied takes write_mu_), so
  // holding it across Stop() would deadlock the drain.
  if (server_ != nullptr) server_->Stop();
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = std::move(shipper_);
    role_.store(Role::kFollower);
  }
  if (shipper != nullptr) {
    shipper->RequestStop();
    shipper->Join();
  }
}

Status ReplicationNode::Restart() {
  if (alive_.load()) return Status::Ok();
  TileServer::Options server_options = opts_.server;
  server_options.replication = &replica_;
  if (server_options.fault_injector == nullptr) {
    server_options.fault_injector = opts_.faults;
  }
  server_ = std::make_unique<TileServer>(service_, server_options);
  HDMAP_RETURN_IF_ERROR(server_->Start());
  opts_.server.port = server_->port();
  role_.store(Role::kFollower);
  // A restarted node cannot prove its history still matches the current
  // leader's (it may have been a leader with never-replicated writes),
  // so it rejoins via catch-up snapshot instead of trusting its log
  // position — the in-process analogue of pg_rewind.
  resync_needed_.store(true);
  replica_.ResetContact();
  events_.Append(EventLog::Type::kReplicaCatchUp, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " restarted as follower; resync scheduled");
  alive_.store(true);
  return Status::Ok();
}

void ReplicationNode::BecomeLeader(
    uint64_t term, const std::vector<WalShipper::FollowerInfo>& followers) {
  std::shared_ptr<WalShipper> old;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    old = std::move(shipper_);
    if (old != nullptr) old->RequestStop();

    // Fencing state moves forward only.
    uint64_t observed = term_.load();
    while (observed < term && !term_.compare_exchange_weak(observed, term)) {
    }
    leader_term_ = term;
    role_.store(Role::kLeader);

    WalShipper::Options so;
    so.log = &log_;
    so.term = &term_;
    so.catchup_source = [this] { return BuildCatchUpPayload(); };
    so.on_stale_term = [this](uint64_t new_term) { StepDown(new_term); };
    so.partitioned = [this] { return partitioned_.load(); };
    so.metrics = &service_.metrics();
    so.faults = opts_.faults;
    so.heartbeat_interval_ms = opts_.heartbeat_interval_ms;
    so.io_timeout_ms = opts_.io_timeout_ms;
    shipper_ = std::make_shared<WalShipper>(so);
    for (const WalShipper::FollowerInfo& follower : followers) {
      shipper_->AddFollower(follower);
    }
  }
  // Join the deposed shipper outside write_mu_: one of its sessions may
  // be inside StepDown (which takes write_mu_) right now.
  if (old != nullptr) old->Join();
  events_.Append(EventLog::Type::kFailoverComplete, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " is leader for term " + std::to_string(term));
}

void ReplicationNode::StepDown(uint64_t term) {
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    uint64_t observed = term_.load();
    while (observed < term && !term_.compare_exchange_weak(observed, term)) {
    }
    if (role_.load() != Role::kLeader || term <= leader_term_) return;
    role_.store(Role::kFollower);
    if (shipper_ != nullptr) shipper_->RequestStop();
    // Local writes from the deposed reign may never have replicated; the
    // next leader repairs us wholesale by snapshot.
    resync_needed_.store(true);
  }
  events_.Append(EventLog::Type::kFailoverDetected, 0,
                 "node " + std::to_string(opts_.node_id) +
                     " deposed: observed term " + std::to_string(term));
}

void ReplicationNode::AddFollower(const WalShipper::FollowerInfo& follower) {
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = shipper_;
  }
  if (shipper != nullptr) shipper->AddFollower(follower);
}

bool ReplicationNode::HasFollower(int node_id) const {
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    shipper = shipper_;
  }
  return shipper != nullptr && shipper->HasFollower(node_id);
}

Status ReplicationNode::StagePatch(const MapPatch& patch) {
  if (role_.load() != Role::kLeader) {
    return Status::FailedPrecondition("not the leader");
  }
  uint64_t seq = 0;
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) {
      return Status::FailedPrecondition("not the leader");
    }
    MapPatch copy = patch;
    HDMAP_RETURN_IF_ERROR(service_.StagePatch(std::move(copy)));
    seq = log_.Append(ReplRecordKind::kPatch, term_.load(),
                      service_.version(), SerializePatch(patch));
    log_.TrimToCapacity(last_publish_seq_ + 1);
    shipper = shipper_;
  }
  return AwaitAcks(shipper, seq);
}

Status ReplicationNode::Publish() {
  if (role_.load() != Role::kLeader) {
    return Status::FailedPrecondition("not the leader");
  }
  uint64_t seq = 0;
  std::shared_ptr<WalShipper> shipper;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) {
      return Status::FailedPrecondition("not the leader");
    }
    HDMAP_RETURN_IF_ERROR(service_.Publish());
    seq = log_.Append(ReplRecordKind::kPublish, term_.load(),
                      service_.version(), std::string());
    last_publish_seq_ = seq;
    log_.TrimToCapacity(last_publish_seq_ + 1);
    shipper = shipper_;
  }
  return AwaitAcks(shipper, seq);
}

Status ReplicationNode::AwaitAcks(const std::shared_ptr<WalShipper>& shipper,
                                  uint64_t seq) {
  if (opts_.min_ack_replicas == 0) return Status::Ok();
  if (shipper == nullptr) {
    return Status::Internal("write staged locally but no shipper is running");
  }
  shipper->NotifyAppend();
  // Deliberately NOT capped at the live follower count: a leader that
  // lost every follower must not self-ack, or "acked" would stop meaning
  // "survives this node's death".
  if (!shipper->WaitForAcks(seq, opts_.min_ack_replicas,
                            opts_.ack_timeout_ms)) {
    return Status::Internal(
        "write staged locally but not acked by " +
        std::to_string(opts_.min_ack_replicas) + " replica(s) within " +
        std::to_string(opts_.ack_timeout_ms) + "ms");
  }
  return Status::Ok();
}

void ReplicationNode::SetPartitioned(bool on) {
  partitioned_.store(on);
  replica_.set_partitioned(on);
}

uint16_t ReplicationNode::port() const {
  return server_ != nullptr ? server_->port() : opts_.server.port;
}

uint64_t ReplicationNode::applied_seq() const {
  if (role_.load() == Role::kLeader) return log_.end_seq();
  return replica_.applied_seq();
}

std::string ReplicationNode::BuildCatchUpPayload() {
  ReplCatchUp snapshot;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (role_.load() != Role::kLeader) return std::string();
    std::shared_ptr<const MapSnapshot> snap = service_.snapshot();
    if (snap == nullptr) return std::string();
    snapshot.term = term_.load();
    snapshot.resume_seq = last_publish_seq_;
    snapshot.version = snap->version;
    snapshot.published_unix_ms = snap->published_unix_ms;
    snapshot.tile_size_m = snap->tiles.tile_size();
    for (const TileId& id : snap->tiles.AllTiles()) {
      Result<PinnedBytes> bytes = snap->tiles.RawTileBytes(id);
      if (!bytes.ok()) return std::string();
      snapshot.tiles.emplace_back(id, std::string(bytes.value().view()));
    }
  }
  return EncodeCatchUp(snapshot);
}

}  // namespace hdmap
