#ifndef HDMAP_OBS_CLUSTER_INSPECTOR_H_
#define HDMAP_OBS_CLUSTER_INSPECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/event_log.h"
#include "common/metrics.h"
#include "common/result.h"
#include "obs/json.h"

namespace hdmap {

/// Cluster-wide health aggregation: polls every configured node's kStats
/// document over the framed-TCP protocol and folds the per-node answers
/// into one coherent view — health and version per node, replication lag
/// per follower in records and milliseconds, a leader/term map with
/// split-brain detection, and a failover timeline joining each node's
/// FAILOVER_* events into one cross-node sequence.
///
/// The inspector is a pure client: it holds no lock any node shares, so a
/// dead, partitioned, or mid-failover node costs one bounded poll timeout
/// and is reported unreachable rather than stalling the view. View() hands
/// out a consistent snapshot (copied under the inspector's own mutex) —
/// callers never observe a torn poll.
class ClusterInspector {
 public:
  struct NodeTarget {
    int node_id = 0;
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    std::vector<NodeTarget> nodes;
    /// Background poll cadence (Start); PollOnce ignores it.
    uint32_t poll_interval_ms = 50;
    /// Per-node budget for connect + kStats exchange. A dead node costs
    /// at most this per poll.
    uint32_t io_timeout_ms = 500;
    uint32_t max_events_per_node = 64;
    /// When set, exports "cluster.*" gauges/counters (reachable node
    /// count, max lag, split-brain flag, poll counter).
    MetricsRegistry* metrics = nullptr;
  };

  /// One follower's lag as reported by its leader.
  struct FollowerLag {
    int node_id = 0;
    uint64_t acked_seq = 0;
    uint64_t lag_records = 0;
    double lag_ms = 0.0;
  };

  /// One node's slice of the latest poll. When `reachable` is false only
  /// node_id is meaningful (the rest keeps its zero state).
  struct NodeStats {
    int node_id = 0;
    bool reachable = false;
    std::string label;
    std::string health;  // "SERVING" / "DEGRADED"
    uint64_t version = 0;
    int64_t unix_ms = 0;
    std::string role;  // "LEADER" / "FOLLOWER"
    uint64_t term = 0;
    uint64_t applied_seq = 0;
    uint64_t log_end_seq = 0;
    double ms_since_leader_contact = 0.0;
    std::vector<FollowerLag> followers;
    std::vector<EventLog::Event> events;  // newest first, per the payload
  };

  /// A node's event placed on the cluster-wide timeline.
  struct TimelineEvent {
    int node_id = 0;
    EventLog::Event event;
  };

  struct ClusterView {
    /// Completed poll rounds folded into this view; 0 = never polled.
    uint64_t poll_seq = 0;
    std::vector<NodeStats> nodes;
    size_t reachable_nodes = 0;
    /// Every node ever seen claiming leadership of a term, accumulated
    /// across polls (a deposed leader's reign stays on record). Two nodes
    /// under one term is a split brain.
    std::map<uint64_t, std::vector<int>> leaders_by_term;
    std::vector<uint64_t> split_brain_terms;
    /// FAILOVER_DETECTED / FAILOVER_COMPLETE / REPLICA_CATCH_UP events
    /// from every node, deduplicated and ordered by wall clock — the
    /// cluster's failover history as one sequence.
    std::vector<TimelineEvent> failover_timeline;
    /// Worst follower lag across all leaders in the latest poll.
    uint64_t max_lag_records = 0;
    double max_lag_ms = 0.0;
  };

  explicit ClusterInspector(Options options);
  /// Stop()s the background poller.
  ~ClusterInspector();

  ClusterInspector(const ClusterInspector&) = delete;
  ClusterInspector& operator=(const ClusterInspector&) = delete;

  /// Starts the background poll loop. Idempotent.
  void Start();
  /// Stops and joins the poll loop. Idempotent; View() stays serviceable.
  void Stop();

  /// One synchronous poll round (every node, sequentially), folding the
  /// results into the view. Usable with or without Start().
  void PollOnce();

  /// Consistent copy of the latest folded view.
  ClusterView View() const;

  /// Parses one node's kStats JSON document into NodeStats (with
  /// reachable=true). Exposed for tests and offline tooling.
  static Result<NodeStats> ParseNodeStats(int node_id, std::string_view json);

  /// Splices per-process Chrome-trace exports (ExportChromeTraceJson with
  /// distinct process ids) into one document Perfetto loads as a single
  /// multi-process timeline. Exports that do not look like trace JSON are
  /// skipped.
  static std::string MergeChromeTraceJson(
      const std::vector<std::string>& exports);

 private:
  /// Polls one node; returns unreachable NodeStats on any failure.
  NodeStats PollNode(const NodeTarget& target) const;
  /// Folds a completed round into view_ under mu_.
  void Fold(std::vector<NodeStats> round);

  Options opts_;
  std::atomic<bool> running_{false};
  std::thread poller_;

  mutable std::mutex mu_;  // guards view_
  ClusterView view_;

  Counter* polls_ = nullptr;
  Gauge* reachable_gauge_ = nullptr;
  Gauge* max_lag_records_gauge_ = nullptr;
  Gauge* max_lag_ms_gauge_ = nullptr;
  Gauge* split_brain_gauge_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_OBS_CLUSTER_INSPECTOR_H_
