#ifndef HDMAP_SIM_SENSORS_H_
#define HDMAP_SIM_SENSORS_H_

#include <vector>

#include "common/rng.h"
#include "core/hd_map.h"
#include "geometry/pose2.h"
#include "geometry/vec3.h"

namespace hdmap {

// ---------------------------------------------------------------------------
// GPS
// ---------------------------------------------------------------------------

/// Consumer/automotive GNSS model: slowly varying bias (multipath /
/// atmospheric) plus white noise. Each traversal draws its own bias.
class GpsSensor {
 public:
  struct Options {
    double noise_sigma = 1.5;       ///< White noise per axis, meters.
    double bias_sigma = 1.0;        ///< Per-traversal constant bias, m.
    double bias_walk_sigma = 0.01;  ///< Bias random-walk per fix, m.
  };

  GpsSensor(const Options& options, Rng& rng);

  /// A noisy fix of the true position.
  Vec2 Measure(const Vec2& true_position, Rng& rng);

  const Vec2& bias() const { return bias_; }

 private:
  Options options_;
  Vec2 bias_;
};

// ---------------------------------------------------------------------------
// Odometry / IMU
// ---------------------------------------------------------------------------

/// Wheel-odometry + yaw-gyro model: measures the relative motion between
/// consecutive poses with multiplicative distance error and additive
/// heading drift.
class OdometrySensor {
 public:
  struct Options {
    double distance_noise_frac = 0.02;  ///< 2% of distance traveled.
    double heading_noise_sigma = 0.003; ///< rad per step.
  };

  explicit OdometrySensor(const Options& options) : options_(options) {}

  struct Delta {
    double distance = 0.0;
    double heading_change = 0.0;
  };

  Delta Measure(const Pose2& from, const Pose2& to, Rng& rng) const;

 private:
  Options options_;
};

// ---------------------------------------------------------------------------
// Landmark detector (camera / LiDAR object front-end)
// ---------------------------------------------------------------------------

/// One detected landmark. `truth_id` identifies the ground-truth element
/// for scoring; association pipelines must not use it.
struct LandmarkDetection {
  Vec2 position_vehicle;   ///< In the vehicle frame (x forward, y left).
  double range = 0.0;
  LandmarkType type = LandmarkType::kTrafficSign;
  double reflectivity = 0.0;
  ElementId truth_id = kInvalidId;
  bool is_clutter = false; ///< False positive.
};

/// Parametric landmark detection model: detects map landmarks within
/// range/FOV with configurable miss rate, range-dependent position noise
/// and clutter (DESIGN.md §4: stands in for the CNN/LiDAR front-ends the
/// surveyed systems consume detections from).
class LandmarkDetector {
 public:
  struct Options {
    double max_range = 60.0;
    double fov_rad = 2.0944;          ///< 120 degrees.
    double detection_prob = 0.95;
    double range_noise_frac = 0.01;   ///< Sigma as a fraction of range.
    double bearing_noise_sigma = 0.005;  ///< rad.
    double clutter_rate = 0.05;       ///< Expected false positives/frame.
    /// Minimum reflectivity to be detectable (HRL filtering uses high
    /// thresholds).
    double min_reflectivity = 0.0;
  };

  explicit LandmarkDetector(const Options& options) : options_(options) {}

  std::vector<LandmarkDetection> Detect(const HdMap& map,
                                        const Pose2& vehicle_pose,
                                        Rng& rng) const;

 private:
  Options options_;
};

// ---------------------------------------------------------------------------
// Lane-marking scanner (LiDAR intensity front-end)
// ---------------------------------------------------------------------------

/// One LiDAR return on the ground plane, vehicle frame, with intensity.
struct MarkingPoint {
  Vec2 position_vehicle;
  double intensity = 0.0;  ///< Reflectivity estimate in [0, 1].
  bool on_marking = false; ///< Ground truth (scoring only).
};

/// Simulates the intensity-based lane-marking returns a multilayer LiDAR
/// produces (Ghallabi et al. [50]): samples points on nearby marking and
/// road-edge features with noise, plus low-intensity road-surface returns.
class MarkingScanner {
 public:
  struct Options {
    double max_range = 25.0;
    double point_spacing = 0.5;        ///< Along-feature sampling, m.
    double lateral_noise_sigma = 0.04; ///< m.
    double intensity_noise_sigma = 0.08;
    int road_surface_points = 120;     ///< Clutter returns per scan.
  };

  explicit MarkingScanner(const Options& options) : options_(options) {}

  std::vector<MarkingPoint> Scan(const HdMap& map, const Pose2& vehicle_pose,
                                 Rng& rng) const;

 private:
  Options options_;
};

}  // namespace hdmap

#endif  // HDMAP_SIM_SENSORS_H_
