// E9 — HDNET (Yang et al. [6]): exploiting HD maps for 3D object
// detection. Paper: geometric (ground) and semantic (road-mask) map
// priors consistently improve detection; when no map is available, an
// online-estimated prior recovers part of the gain.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "perception/object_detector.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E9", "HD-map priors for 3D object detection [6]",
                     "map priors beat no-prior detection; online-estimated "
                     "priors land in between");

  Rng rng(1401);
  std::printf("  terrain sweep (mean over 12 scenes each):\n");
  std::printf("    %-14s %-24s %-24s %-24s\n", "hills (m)",
              "no prior  P/R/F1", "online prior  P/R/F1",
              "map prior  P/R/F1");

  bool shape_holds = true;
  for (double hills : {0.0, 8.0, 18.0}) {
    HighwayOptions opt;
    opt.length = 2500.0;
    opt.hill_amplitude = hills;
    opt.hill_wavelength = 700.0;
    auto hw = GenerateHighway(opt, rng);
    if (!hw.ok()) return 1;
    const Lanelet* lane = nullptr;
    for (const auto& [id, ll] : hw->lanelets()) {
      if (ll.Length() > 300.0) {
        lane = &ll;
        break;
      }
    }
    if (lane == nullptr) continue;

    BinaryConfusion none, online, full;
    for (int scene = 0; scene < 12; ++scene) {
      double base_s = 20.0 + scene * 30.0;
      if (base_s + 70.0 > lane->Length()) base_s = 20.0;
      Pose2 sensor(lane->centerline.PointAt(base_s),
                   lane->centerline.HeadingAt(base_s));
      std::vector<SimObject> objects;
      for (int i = 0; i < 4; ++i) {
        SimObject obj;
        obj.position = lane->centerline.PointAt(base_s + 12.0 + i * 12.0);
        obj.heading = lane->centerline.HeadingAt(base_s + 12.0 + i * 12.0);
        objects.push_back(obj);
      }
      auto scan = SimulateSceneScan(*hw, objects, sensor, {}, rng);
      auto add = [&](MapPriorMode mode, BinaryConfusion& acc) {
        auto dets = DetectObjects(*hw, scan, mode, {});
        BinaryConfusion c = ScoreDetections(dets, objects);
        acc.tp += c.tp;
        acc.fp += c.fp;
        acc.fn += c.fn;
      };
      add(MapPriorMode::kNone, none);
      add(MapPriorMode::kOnlineEstimated, online);
      add(MapPriorMode::kFullMap, full);
    }
    std::printf("    %-14.0f %.2f/%.2f/%-12.2f %.2f/%.2f/%-12.2f "
                "%.2f/%.2f/%.2f\n",
                hills, none.Precision(), none.Sensitivity(), none.F1(),
                online.Precision(), online.Sensitivity(), online.F1(),
                full.Precision(), full.Sensitivity(), full.F1());
    if (hills > 0.0 && full.F1() <= none.F1()) shape_holds = false;
  }
  bench::PrintRow("map priors beat no-prior on hilly terrain",
                  "consistent win", shape_holds ? "yes" : "NO");
  std::printf("\n");
  return shape_holds ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
