# Empty dependencies file for localization_test.
# This may be replaced when dependencies are built.
