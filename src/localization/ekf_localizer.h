#ifndef HDMAP_LOCALIZATION_EKF_LOCALIZER_H_
#define HDMAP_LOCALIZATION_EKF_LOCALIZER_H_

#include <array>
#include <vector>

#include "core/hd_map.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// 3x3 symmetric covariance for the [x, y, heading] state.
using Cov3 = std::array<std::array<double, 3>, 3>;

/// Extended Kalman filter localizer fusing odometry, GPS and HD-map
/// landmark observations, with Mahalanobis verification gates
/// (Shin et al. [54]: ADAS-sensor localization with map matching and
/// verification gates before fusion).
class EkfLocalizer {
 public:
  struct Options {
    double odom_distance_noise_frac = 0.05;
    double odom_heading_noise = 0.01;
    double gps_noise_sigma = 2.0;
    /// Landmark range/bearing measurement sigmas.
    double landmark_range_sigma = 0.4;
    double landmark_bearing_sigma = 0.01;
    /// Chi-square gate (2 dof, ~99%) for accepting a measurement.
    double gate_chi2 = 9.21;
    /// Landmark association radius in the map.
    double association_radius = 8.0;
  };

  EkfLocalizer(const HdMap* map, const Options& options);

  void Init(const Pose2& initial, double position_sigma,
            double heading_sigma);

  /// Odometry prediction step.
  void Predict(double distance, double heading_change);

  /// GPS position update. Returns false when the gate rejected the fix.
  bool UpdateGps(const Vec2& fix);

  /// Landmark update: associates each detection with the nearest map
  /// landmark of compatible type and fuses the gated ones. Returns the
  /// number of accepted detections.
  int UpdateLandmarks(const std::vector<LandmarkDetection>& detections);

  /// Monocular (bearing-only) landmark update (MLVHM [22]: low-cost
  /// camera localization against the vector HD map — a single camera
  /// measures bearings to map features, not ranges). Uses only the
  /// bearing component of each detection. Returns accepted count.
  int UpdateLandmarkBearings(
      const std::vector<LandmarkDetection>& detections);

  const Pose2& estimate() const { return state_; }
  const Cov3& covariance() const { return cov_; }
  /// Square root of the position covariance trace — the 1-sigma radius.
  double PositionSigma() const;

 private:
  const HdMap* map_;
  Options options_;
  Pose2 state_;
  Cov3 cov_{};
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_EKF_LOCALIZER_H_
