# Empty dependencies file for raster_layer_test.
# This may be replaced when dependencies are built.
