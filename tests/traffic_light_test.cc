#include <gtest/gtest.h>

#include "common/statistics.h"
#include "perception/traffic_light_recognition.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

HdMap MapWithLights() {
  HdMap map;
  for (int i = 0; i < 3; ++i) {
    Landmark light;
    light.id = 10 + i;
    light.type = LandmarkType::kTrafficLight;
    light.position = {40.0 + i * 60.0, 5.0, 5.0};
    EXPECT_TRUE(map.AddLandmark(light).ok());
  }
  return map;
}

TEST(TrafficLightProgramTest, CyclesThroughStates) {
  TrafficLightProgram program({20.0, 15.0, 3.0});
  bool saw[4] = {false, false, false, false};
  for (double t = 0.0; t < 38.0; t += 0.5) {
    saw[static_cast<int>(program.StateAt(10, t))] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(LightState::kRed)]);
  EXPECT_TRUE(saw[static_cast<int>(LightState::kGreen)]);
  EXPECT_TRUE(saw[static_cast<int>(LightState::kYellow)]);
  EXPECT_FALSE(saw[static_cast<int>(LightState::kUnknown)]);
  // Deterministic.
  EXPECT_EQ(program.StateAt(10, 5.0), program.StateAt(10, 5.0));
  // The cycle repeats.
  EXPECT_EQ(program.StateAt(10, 1.0), program.StateAt(10, 39.0));
}

TEST(CameraLightDetectorTest, DetectsLightAheadWithColor) {
  HdMap map = MapWithLights();
  TrafficLightProgram program({});
  CameraLightDetector::Options opt;
  opt.detection_prob = 1.0;
  opt.color_error_prob = 0.0;
  opt.clutter_rate = 0.0;
  CameraLightDetector detector(opt);
  Rng rng(1);
  auto dets = detector.Detect(map, program, Pose2(0, 5, 0), 10.0, rng);
  ASSERT_EQ(dets.size(), 1u);  // Only the first light is within 70 m.
  EXPECT_EQ(dets[0].truth_id, 10);
  EXPECT_EQ(dets[0].color, program.StateAt(10, 10.0));
}

TEST(RecognizerTest, InterFrameFilterSuppressesFlicker) {
  HdMap map = MapWithLights();
  TrafficLightProgram program({});
  MapGatedLightRecognizer recognizer(&map, {});
  Rng rng(2);
  // Feed 5 frames: 4 correct red, 1 flickered green.
  const Landmark* light = map.FindLandmark(10);
  Pose2 pose(10.0, 5.0, 0.0);
  Vec2 local = pose.InverseTransformPoint(light->position.xy());
  std::vector<RecognizedLight> out;
  for (int frame = 0; frame < 5; ++frame) {
    LightDetection det;
    det.position_vehicle = local;
    det.color = frame == 2 ? LightState::kGreen : LightState::kRed;
    out = recognizer.ProcessFrame(pose, {det});
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].light_id, 10);
  EXPECT_EQ(out[0].state, LightState::kRed);
}

TEST(RecognizerTest, MapGateRejectsClutter) {
  HdMap map = MapWithLights();
  MapGatedLightRecognizer gated(&map, {});
  MapGatedLightRecognizer::Options ungated_opt;
  ungated_opt.use_map_gate = false;
  ungated_opt.use_interframe_filter = false;
  MapGatedLightRecognizer ungated(&map, ungated_opt);

  Pose2 pose(10.0, 5.0, 0.0);
  LightDetection clutter;
  clutter.position_vehicle = {25.0, -14.0};  // 15+ m from any light.
  clutter.color = LightState::kGreen;
  clutter.is_clutter = true;
  // Gated: nothing is attributed.
  EXPECT_TRUE(gated.ProcessFrame(pose, {clutter}).empty());
  // Ungated baseline: the clutter is attributed to the nearest light.
  auto out = ungated.ProcessFrame(pose, {clutter});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].state, LightState::kGreen);
}

TEST(RecognizerTest, EndToEndPrecisionWithMapBeatsBaseline) {
  HdMap map = MapWithLights();
  TrafficLightProgram program({});
  CameraLightDetector detector({});
  MapGatedLightRecognizer with_map(&map, {});
  MapGatedLightRecognizer::Options base_opt;
  base_opt.use_map_gate = false;
  base_opt.use_interframe_filter = false;
  MapGatedLightRecognizer baseline(&map, base_opt);
  Rng rng(3);

  int map_correct = 0, map_total = 0;
  int base_correct = 0, base_total = 0;
  for (int run = 0; run < 30; ++run) {
    double t0 = run * 7.0;
    for (int frame = 0; frame < 10; ++frame) {
      double t = t0 + frame * 0.1;
      Pose2 pose(5.0 + frame * 1.5, 5.0, 0.0);
      auto dets = detector.Detect(map, program, pose, t, rng);
      for (const auto& rec : with_map.ProcessFrame(pose, dets)) {
        ++map_total;
        if (rec.state == program.StateAt(rec.light_id, t)) ++map_correct;
      }
      for (const auto& rec : baseline.ProcessFrame(pose, dets)) {
        ++base_total;
        if (rec.state == program.StateAt(rec.light_id, t)) ++base_correct;
      }
    }
  }
  ASSERT_GT(map_total, 50);
  ASSERT_GT(base_total, 50);
  double map_precision = static_cast<double>(map_correct) / map_total;
  double base_precision = static_cast<double>(base_correct) / base_total;
  EXPECT_GT(map_precision, base_precision);
  EXPECT_GT(map_precision, 0.9);
}

}  // namespace
}  // namespace hdmap
