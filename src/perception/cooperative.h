#ifndef HDMAP_PERCEPTION_COOPERATIVE_H_
#define HDMAP_PERCEPTION_COOPERATIVE_H_

#include <map>
#include <optional>
#include <vector>

#include "geometry/vec2.h"

namespace hdmap {

/// A position measurement of a tracked object from one sensor source.
struct ObjectMeasurement {
  int object_id = 0;   ///< Association is given (visual track id).
  Vec2 position;
  double noise_sigma = 0.5;
};

/// Constant-velocity Kalman tracker for road objects, supporting fusion
/// of measurements from heterogeneous sources — the ego vehicle's sensors
/// and HD-map-registered roadside cameras (Masi et al. [63] cooperative
/// perception: roadside infrastructure fills ego blind spots and tightens
/// state estimates).
class ObjectTracker {
 public:
  struct TrackState {
    Vec2 position;
    Vec2 velocity;
    double pos_variance = 1.0;  ///< Isotropic position variance.
    double vel_variance = 1.0;
    double last_t = 0.0;
  };

  struct Options {
    double process_accel_sigma = 1.0;  ///< m/s^2 white acceleration.
  };

  explicit ObjectTracker(const Options& options) : options_(options) {}

  /// Predicts all tracks to time t.
  void PredictTo(double t);

  /// Fuses one measurement taken at time t (creates the track if new).
  void Fuse(const ObjectMeasurement& measurement, double t);

  const TrackState* Find(int object_id) const;
  const std::map<int, TrackState>& tracks() const { return tracks_; }

 private:
  Options options_;
  std::map<int, TrackState> tracks_;
};

}  // namespace hdmap

#endif  // HDMAP_PERCEPTION_COOPERATIVE_H_
