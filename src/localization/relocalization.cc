#include "localization/relocalization.h"

#include <algorithm>
#include <vector>

namespace hdmap {

std::optional<RelocalizationResult> CoarseToFineRelocalize(
    const SemanticRaster& map_raster, const SemanticRaster& observed,
    const Vec2& coarse_fix, double coarse_heading,
    const RelocalizationOptions& options) {
  std::vector<SemanticRaster::OccupiedCell> cells =
      observed.OccupiedCells();
  if (cells.empty()) return std::nullopt;

  int evaluated = 0;
  auto score_of = [&](const Pose2& candidate) {
    ++evaluated;
    return map_raster.MatchScoreSparse(cells, candidate);
  };

  // Stage 1: coarse grid over position x heading, keeping the top
  // candidates. Road texture is locally periodic (dash patterns), so the
  // global peak at coarse resolution may be an alias — several seeds are
  // refined and the best refined pose wins.
  struct Seed {
    Pose2 pose;
    double score;
  };
  std::vector<Seed> seeds;
  for (double dx = -options.search_radius; dx <= options.search_radius;
       dx += options.coarse_step) {
    for (double dy = -options.search_radius; dy <= options.search_radius;
         dy += options.coarse_step) {
      for (double dh = -options.heading_range; dh <= options.heading_range;
           dh += options.heading_step) {
        Pose2 candidate(coarse_fix + Vec2{dx, dy}, coarse_heading + dh);
        seeds.push_back({candidate, score_of(candidate)});
      }
    }
  }
  std::sort(seeds.begin(), seeds.end(),
            [](const Seed& a, const Seed& b) { return a.score > b.score; });
  if (seeds.empty() || seeds.front().score <= 0.0) return std::nullopt;
  // Keep up to 6 seeds spaced at least 1.5 coarse steps apart.
  std::vector<Seed> kept;
  for (const Seed& seed : seeds) {
    bool too_close = false;
    for (const Seed& k : kept) {
      if (k.pose.translation.DistanceTo(seed.pose.translation) <
          1.5 * options.coarse_step) {
        too_close = true;
        break;
      }
    }
    if (!too_close) kept.push_back(seed);
    if (kept.size() >= 6) break;
  }

  // Stage 2: refine each seed with step halving; pick the best result.
  RelocalizationResult best;
  best.score = -1e18;
  for (const Seed& seed : kept) {
    Pose2 pose = seed.pose;
    double score = seed.score;
    double step = options.fine_step;
    double heading_step = options.heading_step / 2.0;
    for (int level = 0; level < 3; ++level) {
      bool improved = true;
      while (improved) {
        improved = false;
        Pose2 center = pose;
        for (double dx : {-step, 0.0, step}) {
          for (double dy : {-step, 0.0, step}) {
            for (double dh : {-heading_step, 0.0, heading_step}) {
              if (dx == 0.0 && dy == 0.0 && dh == 0.0) continue;
              Pose2 candidate(center.translation + Vec2{dx, dy},
                              center.heading + dh);
              double s = score_of(candidate);
              if (s > score) {
                score = s;
                pose = candidate;
                improved = true;
              }
            }
          }
        }
      }
      step /= 2.0;
      heading_step /= 2.0;
    }
    if (score > best.score) {
      best.score = score;
      best.pose = pose;
    }
  }
  best.poses_evaluated = evaluated;
  if (best.score <
      options.min_score_fraction * static_cast<double>(cells.size())) {
    return std::nullopt;  // Nothing in the map matched convincingly.
  }
  return best;
}

}  // namespace hdmap
