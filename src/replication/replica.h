#ifndef HDMAP_REPLICATION_REPLICA_H_
#define HDMAP_REPLICATION_REPLICA_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "net/tile_server.h"
#include "replication/replication_log.h"
#include "replication/wire.h"
#include "service/map_service.h"

namespace hdmap {

/// Follower-side replication endpoint: the ReplicationHandler a node
/// plugs into its TileServer. Applies shipped records through the normal
/// MapService path — kPatch via StagePatch, kPublish via Publish — so a
/// follower's snapshots are byte-identical to the leader's (publish is
/// deterministic), and mirrors every applied record into the node's own
/// ReplicationLog so a promoted follower can ship from where it stands.
///
/// Fencing: the node's term lives in an atomic this handler shares with
/// the shipper. A batch or snapshot stamped with an older term is
/// rejected with kReplAckStaleTerm (nothing applied) — a deposed
/// leader's late records cannot land. A higher term is adopted
/// immediately and reported through `on_higher_term` so a stale leader
/// steps itself down.
///
/// Applies are strictly in order: records below the expected position
/// are duplicate resends (skipped), a gap above it stops the batch, and
/// the ack always reports the true next position so the leader rewinds
/// or fast-forwards its view. A publish marker whose version does not
/// line up with local version + 1 sets kReplAckNeedCatchUp *without*
/// applying — diverged state (e.g. a deposed leader's unreplicated
/// publishes) is repaired by snapshot, never papered over.
class Replica : public ReplicationHandler {
 public:
  /// Control-plane fault site: a triggered fault aborts the current
  /// batch mid-apply (records before the fault stay applied — exactly a
  /// follower crash between records; the ack position makes the leader
  /// resend the rest).
  static constexpr const char* kApplyFaultSite = "repl.apply";

  struct Options {
    MapService* service = nullptr;
    /// The node's mirror log (shipped from when this node is promoted).
    ReplicationLog* log = nullptr;
    /// The node's term (shared fencing state; never decreases).
    std::atomic<uint64_t>* term = nullptr;
    /// Called after this replica observes a term above the node's own —
    /// the node should step down if it believes itself leader. Invoked
    /// with the replica's internal lock held: must not call back into
    /// this replica. May be null.
    std::function<void(uint64_t new_term)> on_higher_term;
    /// Called after a publish marker applies, with its log seq (the
    /// node tracks its last-publish position for catch-up serving).
    std::function<void(uint64_t seq)> on_publish_applied;
    /// Called after a catch-up snapshot installs, with its resume seq.
    std::function<void(uint64_t resume_seq)> on_catchup_installed;
    /// Polled (and consumed) before applying a batch: true means the
    /// node's history may have diverged (deposed leader, restart) and
    /// this replica must demand a catch-up snapshot first. May be null.
    std::function<bool()> consume_resync;
    MetricsRegistry* metrics = nullptr;
    FaultInjector* faults = nullptr;
  };

  explicit Replica(Options options);

  Reply HandleReplication(const NetRequest& request) override;

  /// Next record seq this replica will accept.
  uint64_t next_seq() const;
  /// Highest contiguously applied seq (next_seq() - 1).
  uint64_t applied_seq() const;

  /// Milliseconds since the last leader contact that passed fencing
  /// (batch, heartbeat, or snapshot). Very large before first contact.
  double MsSinceLeaderContact() const;
  /// Restarts the contact clock (node restart: silence before the crash
  /// must not count against the current leader).
  void ResetContact();

  /// Marks this replica's state as possibly diverged (a deposed leader
  /// may hold patches that never replicated): every batch is answered
  /// with kReplAckNeedCatchUp until a snapshot installs, which rebases
  /// the node wholesale. Nothing is applied in between.
  void ForceCatchUp();

  /// Failover fencing: forwards the shared term to `term` under the
  /// replica lock, so once this returns no batch from an older term can
  /// be applied or acked. The controller fences every reachable node
  /// BEFORE choosing a promotion candidate — otherwise a falsely-dead
  /// leader could keep acking writes during the promote window, and
  /// those acked records would be truncated by the new leader's
  /// history. Invokes on_higher_term exactly like an observed ship
  /// batch would.
  void FenceTerm(uint64_t term);

  /// Simulated network partition: while set, every request is rejected
  /// with kError/kInternal before any state is touched — to the leader
  /// this node is unreachable.
  void set_partitioned(bool on) { partitioned_.store(on); }
  bool partitioned() const { return partitioned_.load(); }

 private:
  Reply HandleBatch(const NetRequest& request);
  Reply HandleCatchUp(const NetRequest& request);
  /// Builds the ack for the current state; callers hold mu_.
  ReplAck MakeAckLocked(uint8_t flags) const;
  Reply AckReply(const ReplAck& ack) const;

  Options opts_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  bool need_catchup_ = false;
  std::chrono::steady_clock::time_point last_contact_;
  bool contacted_ = false;
  std::atomic<bool> partitioned_{false};

  Counter* records_applied_ = nullptr;
  Counter* apply_failures_ = nullptr;
  Counter* stale_term_rejections_ = nullptr;
  Counter* catchups_installed_ = nullptr;
  Counter* need_catchup_acks_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_REPLICA_H_
