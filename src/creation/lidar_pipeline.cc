#include "creation/lidar_pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/statistics.h"
#include "geometry/grid_index.h"

namespace hdmap {

namespace {

struct CellKey {
  int x;
  int y;
  bool operator<(const CellKey& o) const {
    return x < o.x || (x == o.x && y < o.y);
  }
};

struct CellStats {
  int marking_hits = 0;
  int total_hits = 0;
  Vec2 sum;  ///< Sum of marking-like point positions for sub-cell mean.
};

}  // namespace

std::vector<LineString> LidarMapper::ExtractBoundaries(
    const std::vector<GeoScan>& scans) const {
  // Steps 1+2: aggregate into a 2-D grid keyed by world cell.
  std::map<CellKey, CellStats> grid;
  double res = options_.grid_resolution;
  for (const GeoScan& scan : scans) {
    for (const MarkingPoint& p : scan.points) {
      Vec2 world = scan.pose.TransformPoint(p.position_vehicle);
      CellKey key{static_cast<int>(std::floor(world.x / res)),
                  static_cast<int>(std::floor(world.y / res))};
      CellStats& cell = grid[key];
      ++cell.total_hits;
      // Step 3: ground removal via the intensity filter.
      if (p.intensity >= options_.intensity_threshold) {
        ++cell.marking_hits;
        cell.sum += world;
      }
    }
  }

  // Step 5 (probabilistic fusion) applied cell-wise before extraction:
  // keep cells that were marking-like consistently across visits.
  std::vector<Vec2> survivors;
  for (const auto& [key, cell] : grid) {
    if (cell.marking_hits < options_.min_cell_hits) continue;
    double ratio = static_cast<double>(cell.marking_hits) /
                   static_cast<double>(cell.total_hits);
    if (ratio < options_.fusion_min_ratio) continue;
    survivors.push_back(cell.sum / static_cast<double>(cell.marking_hits));
  }

  // Step 4: chain surviving cells into boundary polylines by greedy
  // nearest-neighbor walking.
  std::vector<LineString> boundaries;
  if (survivors.empty()) return boundaries;
  GridIndex index(options_.chain_radius);
  for (size_t i = 0; i < survivors.size(); ++i) {
    index.Insert(survivors[i], static_cast<int64_t>(i));
  }
  std::vector<bool> used(survivors.size(), false);

  for (size_t seed = 0; seed < survivors.size(); ++seed) {
    if (used[seed]) continue;
    // Grow a chain in both directions from the seed.
    std::vector<Vec2> chain{survivors[seed]};
    used[seed] = true;
    for (int direction = 0; direction < 2; ++direction) {
      Vec2 cur = direction == 0 ? chain.back() : chain.front();
      while (true) {
        double best_d = options_.chain_radius;
        int best = -1;
        for (const auto& item :
             index.RadiusSearch(cur, options_.chain_radius)) {
          size_t idx = static_cast<size_t>(item.id);
          if (used[idx]) continue;
          double d = item.point.DistanceTo(cur);
          if (d < best_d) {
            best_d = d;
            best = static_cast<int>(idx);
          }
        }
        if (best < 0) break;
        used[static_cast<size_t>(best)] = true;
        cur = survivors[static_cast<size_t>(best)];
        if (direction == 0) {
          chain.push_back(cur);
        } else {
          chain.insert(chain.begin(), cur);
        }
      }
    }
    LineString candidate{std::move(chain)};
    if (candidate.Length() >= options_.min_boundary_length) {
      boundaries.push_back(candidate.Simplified(res / 2));
    }
  }
  return boundaries;
}

double BoundaryExtractionError(const std::vector<LineString>& extracted,
                               const HdMap& truth) {
  RunningStats stats;
  for (const LineString& boundary : extracted) {
    double len = boundary.Length();
    for (double s = 0.0; s <= len; s += 2.0) {
      Vec2 p = boundary.PointAt(s);
      double best = 10.0;  // Saturation: completely wrong extraction.
      for (ElementId id :
           truth.LineFeaturesInBox(Aabb::FromPoint(p, 10.0))) {
        const LineFeature* lf = truth.FindLineFeature(id);
        if (lf == nullptr || lf->type == LineType::kVirtual) continue;
        best = std::min(best, lf->geometry.DistanceTo(p));
      }
      stats.Add(best);
    }
  }
  return stats.mean();
}

}  // namespace hdmap
