
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atv/factory_world.cc" "src/atv/CMakeFiles/hdmap_atv.dir/factory_world.cc.o" "gcc" "src/atv/CMakeFiles/hdmap_atv.dir/factory_world.cc.o.d"
  "/root/repo/src/atv/occupancy_grid.cc" "src/atv/CMakeFiles/hdmap_atv.dir/occupancy_grid.cc.o" "gcc" "src/atv/CMakeFiles/hdmap_atv.dir/occupancy_grid.cc.o.d"
  "/root/repo/src/atv/scan_matcher.cc" "src/atv/CMakeFiles/hdmap_atv.dir/scan_matcher.cc.o" "gcc" "src/atv/CMakeFiles/hdmap_atv.dir/scan_matcher.cc.o.d"
  "/root/repo/src/atv/sign_update.cc" "src/atv/CMakeFiles/hdmap_atv.dir/sign_update.cc.o" "gcc" "src/atv/CMakeFiles/hdmap_atv.dir/sign_update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hdmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hdmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hdmap_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
