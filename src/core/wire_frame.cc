#include "core/wire_frame.h"

#include <array>
#include <cstring>

namespace hdmap {

namespace {

// "HDFR" little-endian: distinct from every legacy payload magic
// ("HDMF"/"HDMC"/"HDMP"), so framed and bare buffers are unambiguous.
constexpr uint32_t kFrameMagic = 0x52464448;

// Slice-by-8 CRC tables: table[0] is the classic byte-at-a-time table;
// table[k][b] is the CRC contribution of byte b seen k positions earlier
// in an 8-byte chunk. Eight independent lookups replace the 8-iteration
// carry chain, so the kernel is limited by L1 loads, not by the serial
// dependency — the standard software formulation (Kounavis & Berry) that
// autovectorizes well and needs no CPU CRC instruction.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kCrcTables =
    MakeCrcTables();

uint32_t ReadHeaderU32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

uint32_t Crc32Bytewise(std::string_view data, uint32_t crc) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kCrcTables[0][(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(std::string_view data, uint32_t crc) {
  crc = ~crc;
  const char* p = data.data();
  size_t n = data.size();
  // 8 bytes per iteration: fold the running CRC into the first word,
  // then combine eight independent table lookups. The u32 loads assume
  // little-endian byte order, like every other fixed-width field in the
  // wire format.
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= crc;
    crc = kCrcTables[7][lo & 0xFFu] ^ kCrcTables[6][(lo >> 8) & 0xFFu] ^
          kCrcTables[5][(lo >> 16) & 0xFFu] ^ kCrcTables[4][lo >> 24] ^
          kCrcTables[3][hi & 0xFFu] ^ kCrcTables[2][(hi >> 8) & 0xFFu] ^
          kCrcTables[1][(hi >> 16) & 0xFFu] ^ kCrcTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = kCrcTables[0][(crc ^ static_cast<unsigned char>(*p)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

bool IsFramed(std::string_view data) {
  return data.size() >= sizeof(uint32_t) &&
         ReadHeaderU32(data, 0) == kFrameMagic;
}

std::string WrapFrame(std::string_view payload) {
  std::string out;
  out.reserve(kWireFrameHeaderSize + payload.size());
  AppendU32(out, kFrameMagic);
  AppendU32(out, kWireFrameVersion);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

namespace {

Result<std::string_view> UnwrapFrameImpl(std::string_view data,
                                         bool verify_checksum) {
  if (data.size() < kWireFrameHeaderSize) {
    return Status::DataLoss("frame truncated: " +
                            std::to_string(data.size()) +
                            " bytes, header needs " +
                            std::to_string(kWireFrameHeaderSize));
  }
  if (ReadHeaderU32(data, 0) != kFrameMagic) {
    return Status::DataLoss("bad frame magic");
  }
  uint32_t version = ReadHeaderU32(data, 4);
  if (version != kWireFrameVersion) {
    return Status::DataLoss("unsupported frame version " +
                            std::to_string(version));
  }
  uint32_t length = ReadHeaderU32(data, 8);
  if (length != data.size() - kWireFrameHeaderSize) {
    return Status::DataLoss(
        "frame length mismatch: header claims " + std::to_string(length) +
        " payload bytes, buffer carries " +
        std::to_string(data.size() - kWireFrameHeaderSize));
  }
  std::string_view payload = data.substr(kWireFrameHeaderSize);
  if (verify_checksum) {
    uint32_t expected_crc = ReadHeaderU32(data, 12);
    uint32_t actual_crc = Crc32(payload);
    if (actual_crc != expected_crc) {
      return Status::DataLoss("frame checksum mismatch (payload corrupted)");
    }
  }
  return payload;
}

}  // namespace

Result<std::string_view> UnwrapFrame(std::string_view data) {
  return UnwrapFrameImpl(data, /*verify_checksum=*/true);
}

Result<std::string_view> UnwrapFrameTrusted(std::string_view data) {
  return UnwrapFrameImpl(data, /*verify_checksum=*/false);
}

}  // namespace hdmap
