file(REMOVE_RECURSE
  "libhdmap_planning.a"
)
