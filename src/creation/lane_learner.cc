#include "creation/lane_learner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/statistics.h"

namespace hdmap {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

std::vector<double> LaneLearner::SmoothTrack(
    const LaneObservationTrack& track) const {
  size_t n = track.offsets.size();
  std::vector<double> mean(n, 0.0), var(n, 0.0);
  std::vector<double> pred_mean(n, 0.0), pred_var(n, 0.0);
  if (n == 0) return {};

  double q = options_.process_sigma * options_.process_sigma;
  double r = options_.measurement_sigma * options_.measurement_sigma;

  // Forward Kalman pass (random-walk model x_k = x_{k-1} + w).
  double m = 0.0;
  double p = 100.0;  // Diffuse prior.
  bool initialized = false;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) p += q;
    pred_mean[i] = m;
    pred_var[i] = p;
    double z = track.offsets[i];
    if (!std::isnan(z)) {
      if (!initialized) {
        m = z;
        p = r;
        initialized = true;
      } else {
        double k = p / (p + r);
        m += k * (z - m);
        p *= (1.0 - k);
      }
    }
    mean[i] = m;
    var[i] = p;
  }
  if (!initialized) return std::vector<double>(n, kNan);

  // RTS backward smoother.
  std::vector<double> smoothed = mean;
  for (size_t i = n - 1; i-- > 0;) {
    double p_pred = var[i] + q;
    if (p_pred <= 0.0) continue;
    double c = var[i] / p_pred;
    smoothed[i] = mean[i] + c * (smoothed[i + 1] - mean[i]);
  }
  return smoothed;
}

std::vector<double> LaneLearner::LearnOffsets(
    const std::vector<LaneObservationTrack>& tracks) const {
  size_t n = 0;
  for (const auto& t : tracks) n = std::max(n, t.offsets.size());
  std::vector<double> learned(n, kNan);
  if (n == 0) return learned;

  std::vector<std::vector<double>> smoothed;
  smoothed.reserve(tracks.size());
  for (const auto& t : tracks) smoothed.push_back(SmoothTrack(t));

  for (size_t i = 0; i < n; ++i) {
    std::vector<double> samples;
    for (size_t t = 0; t < tracks.size(); ++t) {
      if (i < smoothed[t].size() && !std::isnan(smoothed[t][i]) &&
          // Only count stations the track actually observed nearby:
          // require at least one real detection within 3 stations.
          [&] {
            size_t lo = i >= 3 ? i - 3 : 0;
            size_t hi = std::min(tracks[t].offsets.size(), i + 4);
            for (size_t k = lo; k < hi; ++k) {
              if (!std::isnan(tracks[t].offsets[k])) return true;
            }
            return false;
          }()) {
        samples.push_back(smoothed[t][i]);
      }
    }
    if (static_cast<int>(samples.size()) >= options_.min_tracks) {
      learned[i] = Median(samples);
    }
  }
  return learned;
}

LineString LaneLearner::RealizeGeometry(const LineString& reference,
                                        const std::vector<double>& offsets,
                                        double station_step) const {
  std::vector<Vec2> pts;
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (std::isnan(offsets[i])) continue;
    double s = static_cast<double>(i) * station_step;
    if (s > reference.Length()) break;
    Vec2 base = reference.PointAt(s);
    Vec2 normal = reference.TangentAt(s).Perp();
    pts.push_back(base + normal * offsets[i]);
  }
  return LineString(std::move(pts));
}

}  // namespace hdmap
