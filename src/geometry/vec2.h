#ifndef HDMAP_GEOMETRY_VEC2_H_
#define HDMAP_GEOMETRY_VEC2_H_

#include <cmath>
#include <ostream>

namespace hdmap {

/// 2-D vector / point in a local metric (ENU-style) frame, meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z-component of the 3-D cross product).
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
  double DistanceTo(const Vec2& o) const { return (*this - o).Norm(); }
  constexpr double SquaredDistanceTo(const Vec2& o) const {
    return (*this - o).SquaredNorm();
  }
  /// Unit vector; returns (0,0) for the zero vector.
  Vec2 Normalized() const {
    double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }
  /// Rotates by `angle` radians counter-clockwise.
  Vec2 Rotated(double angle) const {
    double c = std::cos(angle);
    double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
  /// atan2(y, x).
  double Angle() const { return std::atan2(y, x); }

  friend constexpr bool operator==(const Vec2& a, const Vec2& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

/// Linear interpolation: a + t * (b - a).
inline constexpr Vec2 Lerp(const Vec2& a, const Vec2& b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_VEC2_H_
