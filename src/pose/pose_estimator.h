#ifndef HDMAP_POSE_POSE_ESTIMATOR_H_
#define HDMAP_POSE_POSE_ESTIMATOR_H_

#include "core/hd_map.h"
#include "geometry/pose2.h"
#include "geometry/pose3.h"

namespace hdmap {

/// Completes a planar (4-DoF: x, y, z-from-map, yaw) estimate to a full
/// 6-DoF pose using the HD map's road-surface geometry (HDMI-Loc [23]:
/// the particle filter provides translation+heading, then roll and pitch
/// are recovered relative to the map).
///
/// Pitch comes from the longitudinal grade at the matched lane station;
/// roll from the lateral elevation difference across the road surface.
/// Off-map poses return a flat (roll = pitch = 0, z = 0) completion.
Pose3 CompleteTo6Dof(const HdMap& map, const Pose2& planar_pose);

}  // namespace hdmap

#endif  // HDMAP_POSE_POSE_ESTIMATOR_H_
