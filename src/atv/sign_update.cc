#include "atv/sign_update.h"

#include <algorithm>

namespace hdmap {

AtvSignUpdater::AtvSignUpdater(const HdMap* valid_map,
                               const Options& options)
    : valid_map_(valid_map), options_(options) {}

void AtvSignUpdater::ProcessFrame(
    const Pose2& pose, const std::vector<LandmarkDetection>& detections) {
  // Track which valid signs are within detector range this frame.
  std::vector<ElementId> in_range = valid_map_->LandmarksNear(
      pose.translation, options_.detector_range);
  std::map<ElementId, bool> matched_this_frame;
  for (ElementId id : in_range) matched_this_frame[id] = false;

  for (const LandmarkDetection& det : detections) {
    Vec2 world = pose.TransformPoint(det.position_vehicle);

    // Match against the valid map.
    ElementId valid_match = kInvalidId;
    double best_d = options_.match_radius;
    for (ElementId id :
         valid_map_->LandmarksNear(world, options_.match_radius)) {
      const Landmark* lm = valid_map_->FindLandmark(id);
      if (lm == nullptr) continue;
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        valid_match = id;
      }
    }
    if (valid_match != kInvalidId) {
      matched_this_frame[valid_match] = true;
      ++observed_counts_[valid_match];
      continue;
    }

    // Unknown sign: accumulate in the virtual map. Reuse an existing
    // virtual feature when nearby, else allocate a new id.
    ElementId virtual_id = kInvalidId;
    double best_virtual = options_.match_radius;
    for (const auto& [vid, feature] : virtual_map_.features()) {
      double d = feature.position.xy().DistanceTo(world);
      if (d < best_virtual) {
        best_virtual = d;
        virtual_id = vid;
      }
    }
    if (virtual_id == kInvalidId) virtual_id = virtual_ids_.Next();
    virtual_map_.AddObservation(virtual_id, det.type, Vec3(world, 2.0));
  }

  for (const auto& [id, matched] : matched_this_frame) {
    if (!matched) ++pass_counts_[id];
  }
}

AtvSignUpdater::Report AtvSignUpdater::BuildReport() const {
  Report report;
  for (const auto& [vid, feature] : virtual_map_.features()) {
    if (feature.observation_count < options_.min_observations) continue;
    Landmark lm;
    lm.id = vid;
    lm.type = feature.type;
    lm.position = feature.position;
    lm.subtype = "atv_detected";
    report.new_signs.push_back(std::move(lm));
  }
  for (const auto& [id, misses] : pass_counts_) {
    int observed =
        observed_counts_.count(id) > 0 ? observed_counts_.at(id) : 0;
    if (misses >= options_.min_missed_passes && observed == 0) {
      report.missing_signs.push_back(id);
    }
  }
  return report;
}

MapPatch AtvSignUpdater::Report::AsPatch() const {
  MapPatch patch;
  patch.added_landmarks = new_signs;
  patch.removed_landmarks = missing_signs;
  return patch;
}

}  // namespace hdmap
