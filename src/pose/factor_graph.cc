#include "pose/factor_graph.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/units.h"

namespace hdmap {

namespace {

/// Dense symmetric solve via Gaussian elimination with partial pivoting.
/// Window sizes are tiny (<= ~30 variables), so dense is appropriate.
bool SolveDense(std::vector<std::vector<double>>& a, std::vector<double>& b,
                std::vector<double>* x) {
  size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) acc -= a[row][k] * (*x)[k];
    (*x)[row] = acc / a[row][row];
  }
  return true;
}

/// Accumulates r^T W r terms into the normal equations for a residual
/// with Jacobian rows over a contiguous 3-var block (or two blocks).
struct NormalEquations {
  explicit NormalEquations(size_t num_vars)
      : h(num_vars, std::vector<double>(num_vars, 0.0)), g(num_vars, 0.0) {}

  /// Adds one scalar residual r with weight w and sparse Jacobian:
  /// (var index, derivative) pairs.
  void Add(double r, double w,
           const std::vector<std::pair<size_t, double>>& jacobian) {
    for (const auto& [i, ji] : jacobian) {
      g[i] += w * ji * r;
      for (const auto& [j, jj] : jacobian) {
        h[i][j] += w * ji * jj;
      }
    }
  }

  std::vector<std::vector<double>> h;
  std::vector<double> g;
};

}  // namespace

SlidingWindowEstimator::SlidingWindowEstimator(const HdMap* map,
                                               const Options& options)
    : map_(map), options_(options) {}

void SlidingWindowEstimator::Init(const Pose2& initial) {
  window_.clear();
  Frame f;
  f.pose = initial;
  window_.push_back(std::move(f));
}

void SlidingWindowEstimator::AssociateDetections(
    Frame* frame, const std::vector<LandmarkDetection>& detections) {
  for (const LandmarkDetection& det : detections) {
    Vec2 world = frame->pose.TransformPoint(det.position_vehicle);
    const Landmark* best = nullptr;
    double best_d = options_.association_radius;
    for (ElementId id :
         map_->LandmarksNear(world, options_.association_radius)) {
      const Landmark* lm = map_->FindLandmark(id);
      if (lm == nullptr || lm->type != det.type) continue;  // Semantic gate.
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        best = lm;
      }
    }
    if (best != nullptr) {
      frame->observations.push_back(
          {det.position_vehicle, best->position.xy()});
    }
  }
}

void SlidingWindowEstimator::AddFrame(
    double odom_distance, double odom_heading_change,
    const std::vector<LandmarkDetection>& detections) {
  if (window_.empty()) {
    Init(Pose2());
  }
  Frame f;
  const Pose2& prev = window_.back().pose;
  double mid_h = prev.heading + odom_heading_change / 2.0;
  f.pose = Pose2(prev.translation +
                     Vec2{std::cos(mid_h), std::sin(mid_h)} * odom_distance,
                 prev.heading + odom_heading_change);
  f.odom_distance = odom_distance;
  f.odom_heading_change = odom_heading_change;
  AssociateDetections(&f, detections);
  window_.push_back(std::move(f));
  while (static_cast<int>(window_.size()) > options_.window_size) {
    window_.pop_front();
  }
  Optimize();
}

void SlidingWindowEstimator::Optimize() {
  size_t k = window_.size();
  if (k < 2) return;
  size_t num_vars = 3 * k;

  double w_odom_t = 1.0 / (options_.odom_trans_sigma *
                           options_.odom_trans_sigma);
  double w_odom_r =
      1.0 / (options_.odom_rot_sigma * options_.odom_rot_sigma);
  double w_range_in = 1.0 / (options_.landmark_range_sigma *
                             options_.landmark_range_sigma);
  double w_bear_in = 1.0 / (options_.landmark_bearing_sigma *
                            options_.landmark_bearing_sigma);
  double out2 = options_.outlier_scale * options_.outlier_scale;

  int inlier_factors = 0;
  int total_factors = 0;

  for (int iter = 0; iter < options_.gauss_newton_iterations; ++iter) {
    NormalEquations eq(num_vars);
    inlier_factors = 0;
    total_factors = 0;

    // Anchor prior on the oldest pose (gauge fixing).
    {
      const Pose2& p0 = window_.front().pose;
      double w_anchor = 1e4;
      eq.Add(0.0, w_anchor, {{0, 1.0}});
      eq.Add(0.0, w_anchor, {{1, 1.0}});
      eq.Add(0.0, w_anchor, {{2, 1.0}});
      (void)p0;
    }

    // Odometry factors between consecutive poses.
    for (size_t i = 1; i < k; ++i) {
      const Pose2& a = window_[i - 1].pose;
      const Pose2& b = window_[i].pose;
      double d = window_[i].odom_distance;
      double dh = window_[i].odom_heading_change;
      double mid_h = a.heading + dh / 2.0;
      double c = std::cos(mid_h), s = std::sin(mid_h);
      // Residuals: rx, ry = b.t - a.t - R(mid)*[d,0]; rh = wrap(...).
      double rx = b.translation.x - a.translation.x - d * c;
      double ry = b.translation.y - a.translation.y - d * s;
      double rh = AngleDiff(b.heading, a.heading + dh);
      size_t ia = 3 * (i - 1);
      size_t ib = 3 * i;
      // d rx / d a.h = d * s; d ry / d a.h = -d * c (from -R*[d,0]).
      eq.Add(rx, w_odom_t,
             {{ia, -1.0}, {ia + 2, d * s}, {ib, 1.0}});
      eq.Add(ry, w_odom_t,
             {{ia + 1, -1.0}, {ia + 2, -d * c}, {ib + 1, 1.0}});
      eq.Add(rh, w_odom_r, {{ia + 2, -1.0}, {ib + 2, 1.0}});
    }

    // Landmark factors with max-mixture gating.
    for (size_t i = 0; i < k; ++i) {
      const Pose2& p = window_[i].pose;
      size_t base = 3 * i;
      for (const Frame::Observation& obs : window_[i].observations) {
        ++total_factors;
        Vec2 delta = obs.landmark_world - p.translation;
        double range_pred = delta.Norm();
        if (range_pred < 1.0) continue;
        double bearing_pred = AngleDiff(delta.Angle(), p.heading);
        double range_meas = obs.detection_vehicle.Norm();
        double bearing_meas = obs.detection_vehicle.Angle();
        double r_r = range_meas - range_pred;
        double r_b = AngleDiff(bearing_meas, bearing_pred);

        // Max-mixture: the outlier mode is the same Gaussian inflated by
        // outlier_scale. The inlier mode wins iff its (Mahalanobis +
        // normalization) log-likelihood is higher:
        //   m2_in - m2_out < 2 * dim * ln(outlier_scale).
        double m2_in = r_r * r_r * w_range_in + r_b * r_b * w_bear_in;
        double m2_out = m2_in / out2;
        bool inlier = (m2_in - m2_out) <
                      2.0 * 2.0 * std::log(options_.outlier_scale);
        double w_r = inlier ? w_range_in : w_range_in / out2;
        double w_b = inlier ? w_bear_in : w_bear_in / out2;
        if (inlier) ++inlier_factors;

        double inv_r = 1.0 / range_pred;
        // d range_pred / d x = -delta.x / range, etc.
        // Residual r_r = meas - pred, so d r_r/d x = +delta.x/range.
        eq.Add(r_r, w_r,
               {{base, delta.x * inv_r}, {base + 1, delta.y * inv_r}});
        // bearing_pred = atan2(dy,dx) - heading.
        // d bearing_pred/d x = dy/r^2 ; d/d y = -dx/r^2 ; d/d h = -1.
        // r_b = meas - pred => derivatives negated.
        eq.Add(r_b, w_b,
               {{base, -delta.y * inv_r * inv_r},
                {base + 1, delta.x * inv_r * inv_r},
                {base + 2, 1.0}});
      }
    }

    // Solve H dx = -g.
    std::vector<double> rhs(num_vars);
    for (size_t i = 0; i < num_vars; ++i) rhs[i] = -eq.g[i];
    // Levenberg damping for robustness.
    for (size_t i = 0; i < num_vars; ++i) eq.h[i][i] += 1e-6;
    std::vector<double> dx;
    if (!SolveDense(eq.h, rhs, &dx)) break;

    double max_step = 0.0;
    for (size_t i = 0; i < k; ++i) {
      Pose2& p = window_[i].pose;
      p = Pose2(p.translation + Vec2{dx[3 * i], dx[3 * i + 1]},
                p.heading + dx[3 * i + 2]);
      max_step = std::max({max_step, std::abs(dx[3 * i]),
                           std::abs(dx[3 * i + 1])});
    }
    if (max_step < 1e-5) break;
  }

  inlier_fraction_ =
      total_factors > 0
          ? static_cast<double>(inlier_factors) / total_factors
          : 1.0;
}

Pose2 SlidingWindowEstimator::Estimate() const {
  return window_.empty() ? Pose2() : window_.back().pose;
}

}  // namespace hdmap
