#include "maintenance/incremental_fusion.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

void IncrementalFuser::AddElement(ElementId id, const Vec2& position,
                                  double initial_variance) {
  ElementEstimate e;
  e.position = position;
  e.variance = initial_variance;
  elements_[id] = e;
}

void IncrementalFuser::UpdateElement(ElementEstimate* e,
                                     const Measurement& m) {
  // Time decay: stale estimates become uncertain, so fresh measurements
  // dominate after environmental change.
  double days = std::max(0.0, m.day - e->last_update_day);
  e->variance += options_.decay_variance_per_day * days;
  e->last_update_day = m.day;

  double r2 = options_.measurement_sigma * options_.measurement_sigma;
  double k = e->variance / (e->variance + r2);
  e->position = e->position + (m.position - e->position) * k;
  e->variance *= (1.0 - k);

  if (m.semantic_match) {
    e->semantic_confidence = std::min(
        1.0, e->semantic_confidence +
                 options_.confidence_gain * (1.0 - e->semantic_confidence));
  } else {
    e->semantic_confidence = std::max(
        0.0, e->semantic_confidence - options_.confidence_loss);
  }
}

bool IncrementalFuser::TryMatch(const Measurement& m) {
  ElementEstimate* best = nullptr;
  double best_d = options_.match_radius;
  for (auto& [id, e] : elements_) {
    double d = e.position.DistanceTo(m.position);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  if (best == nullptr) return false;
  UpdateElement(best, m);
  return true;
}

void IncrementalFuser::Fuse(const Measurement& measurement) {
  if (!TryMatch(measurement)) {
    // Unmatched: feed back with historical information for future
    // matching attempts [43].
    feedback_queue_.emplace_back(measurement, 0);
  }
}

void IncrementalFuser::RetryFeedbackQueue() {
  std::vector<std::pair<Measurement, int>> remaining;
  for (auto& [m, attempts] : feedback_queue_) {
    if (TryMatch(m)) continue;
    if (attempts + 1 < options_.max_feedback_attempts) {
      remaining.emplace_back(m, attempts + 1);
    }
  }
  feedback_queue_ = std::move(remaining);
}

const IncrementalFuser::ElementEstimate* IncrementalFuser::Find(
    ElementId id) const {
  auto it = elements_.find(id);
  return it == elements_.end() ? nullptr : &it->second;
}

}  // namespace hdmap
