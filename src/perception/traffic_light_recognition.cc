#include "perception/traffic_light_recognition.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

LightState TrafficLightProgram::StateAt(ElementId id, double t) const {
  double cycle = options_.red_s + options_.green_s + options_.yellow_s;
  // Phase-shift by id so neighboring intersections are not in lockstep.
  double phase = std::fmod(static_cast<double>(id) * 7.31, cycle);
  double u = std::fmod(t + phase, cycle);
  if (u < 0.0) u += cycle;
  if (u < options_.red_s) return LightState::kRed;
  if (u < options_.red_s + options_.green_s) return LightState::kGreen;
  return LightState::kYellow;
}

std::vector<LightDetection> CameraLightDetector::Detect(
    const HdMap& map, const TrafficLightProgram& program,
    const Pose2& vehicle_pose, double t, Rng& rng) const {
  std::vector<LightDetection> detections;
  for (ElementId id :
       map.LandmarksNear(vehicle_pose.translation, options_.max_range)) {
    const Landmark* lm = map.FindLandmark(id);
    if (lm == nullptr || lm->type != LandmarkType::kTrafficLight) continue;
    Vec2 local = vehicle_pose.InverseTransformPoint(lm->position.xy());
    if (local.Norm() > options_.max_range || local.Norm() < 2.0) continue;
    if (std::abs(local.Angle()) > options_.fov_rad / 2.0) continue;
    if (!rng.Bernoulli(options_.detection_prob)) continue;
    LightDetection det;
    det.position_vehicle =
        local + Vec2{rng.Normal(0.0, options_.position_noise),
                     rng.Normal(0.0, options_.position_noise)};
    LightState truth = program.StateAt(id, t);
    if (rng.Bernoulli(options_.color_error_prob)) {
      // Misclassified into one of the other two colors.
      LightState wrong[2];
      int n = 0;
      for (LightState s :
           {LightState::kRed, LightState::kYellow, LightState::kGreen}) {
        if (s != truth) wrong[n++] = s;
      }
      det.color = wrong[rng.UniformInt(0, 1)];
    } else {
      det.color = truth;
    }
    det.truth_id = id;
    detections.push_back(det);
  }
  // Clutter: brake lights, billboards, reflections.
  double lambda = options_.clutter_rate;
  while (lambda > 0.0) {
    if (rng.Bernoulli(std::min(1.0, lambda))) {
      LightDetection det;
      double range = rng.Uniform(5.0, options_.max_range);
      double bearing =
          rng.Uniform(-options_.fov_rad / 2.0, options_.fov_rad / 2.0);
      det.position_vehicle =
          Vec2{range * std::cos(bearing), range * std::sin(bearing)};
      det.color = rng.Bernoulli(0.7) ? LightState::kRed : LightState::kGreen;
      det.is_clutter = true;
      detections.push_back(det);
    }
    lambda -= 1.0;
  }
  return detections;
}

MapGatedLightRecognizer::MapGatedLightRecognizer(const HdMap* map,
                                                 const Options& options)
    : map_(map), options_(options) {}

std::vector<RecognizedLight> MapGatedLightRecognizer::ProcessFrame(
    const Pose2& vehicle_pose,
    const std::vector<LightDetection>& detections) {
  // Attribute detections to mapped lights.
  std::map<ElementId, std::vector<LightState>> frame_votes;
  for (const LightDetection& det : detections) {
    Vec2 world = vehicle_pose.TransformPoint(det.position_vehicle);
    double search = options_.use_map_gate ? options_.gate_radius : 80.0;
    ElementId best = kInvalidId;
    double best_d = search;
    for (ElementId id : map_->LandmarksNear(world, search)) {
      const Landmark* lm = map_->FindLandmark(id);
      if (lm == nullptr || lm->type != LandmarkType::kTrafficLight) {
        continue;
      }
      double d = lm->position.xy().DistanceTo(world);
      if (d < best_d) {
        best_d = d;
        best = id;
      }
    }
    if (best == kInvalidId) continue;  // Gated out (or truly nothing).
    frame_votes[best].push_back(det.color);
  }

  // Update per-light history and produce filtered states.
  std::vector<RecognizedLight> out;
  for (const auto& [id, votes] : frame_votes) {
    std::deque<LightState>& hist = history_[id];
    for (LightState s : votes) hist.push_back(s);
    size_t window = options_.use_interframe_filter
                        ? static_cast<size_t>(options_.filter_window)
                        : votes.size();
    while (hist.size() > window) hist.pop_front();

    int counts[4] = {0, 0, 0, 0};
    for (LightState s : hist) ++counts[static_cast<int>(s)];
    int best_count = 0;
    LightState best_state = LightState::kUnknown;
    for (int s = 1; s <= 3; ++s) {
      if (counts[s] > best_count) {
        best_count = counts[s];
        best_state = static_cast<LightState>(s);
      }
    }
    int needed = options_.use_interframe_filter ? options_.min_votes : 1;
    if (best_count >= needed) {
      out.push_back({id, best_state, best_count});
    }
  }
  return out;
}

}  // namespace hdmap
