// E12 — Zhao et al. [32]: automatic vector road-structure mapping from
// multibeam LiDAR. Paper: average absolute pose error 1.83 m for scenes
// from hundreds of meters up to 10 km, with minutes-scale processing.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "creation/lidar_pipeline.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader("E12", "LiDAR 5-step road-structure mapping [32]",
                     "boundary mapping at ~1-2 m absolute error across "
                     "scene scales; fast batch processing");

  Rng rng(1801);
  std::printf("  scene-scale sweep (mapping-vehicle pose error 1.5 m "
              "bias + 0.3 m noise):\n");
  std::printf("    %-12s %-18s %-16s %-14s\n", "scene (km)",
              "boundary err (m)", "boundaries", "runtime (s)");

  bool all_ok = true;
  for (double km : {0.3, 1.0, 3.0}) {
    HighwayOptions opt;
    opt.length = km * 1000.0;
    opt.curve_amplitude = 0.08;
    opt.sign_spacing = 1e9;
    auto hw = GenerateHighway(opt, rng);
    if (!hw.ok()) return 1;
    const Lanelet* lane = nullptr;
    for (const auto& [id, ll] : hw->lanelets()) {
      // Head of a forward chain (short scenes may be a single segment).
      if (ll.predecessors.empty() &&
          (lane == nullptr || !ll.successors.empty())) {
        lane = &ll;
        if (!ll.successors.empty()) break;
      }
    }
    if (lane == nullptr) continue;

    // The mapping vehicle's pose estimate has a slowly varying error —
    // the dominant error source in [32].
    MarkingScanner::Options sopt;
    sopt.max_range = 18.0;
    sopt.road_surface_points = 50;
    MarkingScanner scanner(sopt);
    GpsSensor pose_error({0.3, 1.5, 0.02}, rng);

    std::vector<GeoScan> scans;
    const Lanelet* cur = lane;
    while (cur != nullptr) {
      for (double s = 0.0; s < cur->Length(); s += 6.0) {
        Pose2 truth(cur->centerline.PointAt(s),
                    cur->centerline.HeadingAt(s));
        GeoScan scan;
        scan.pose =
            Pose2(pose_error.Measure(truth.translation, rng), truth.heading);
        scan.points = scanner.Scan(*hw, truth, rng);
        scans.push_back(std::move(scan));
      }
      cur = cur->successors.empty()
                ? nullptr
                : hw->FindLanelet(cur->successors.front());
    }

    bench::Timer timer;
    LidarMapper mapper({});
    auto boundaries = mapper.ExtractBoundaries(scans);
    double runtime = timer.Seconds();
    double err = BoundaryExtractionError(boundaries, *hw);
    std::printf("    %-12.1f %-18.2f %-16zu %-14.2f\n", km, err,
                boundaries.size(), runtime);
    if (err > 3.0 || boundaries.empty()) all_ok = false;
  }
  bench::PrintRow("boundary error across scales (m)", "1.83 avg pose err",
                  all_ok ? "~1-2 (bounded)" : "DEGRADED");
  std::printf("\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
