#ifndef HDMAP_LOCALIZATION_LANE_MATCHER_H_
#define HDMAP_LOCALIZATION_LANE_MATCHER_H_

#include <map>
#include <vector>

#include "core/hd_map.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Lane-level map matching with integrity (Li et al. [59]): maintains a
/// probability distribution over candidate lanelets, propagated through
/// the lane topology with odometry and updated from position fixes. The
/// integrity flag reports whether the lane hypothesis is trustworthy.
class LaneMatcher {
 public:
  struct Options {
    /// Candidate lanelets are gathered within this radius of the fix.
    double candidate_radius = 12.0;
    /// Lateral measurement sigma (meters): how well the fix constrains
    /// the lane.
    double lateral_sigma = 1.5;
    /// Heading agreement sigma (radians).
    double heading_sigma = 0.5;
    /// Integrity requires the winning lane to hold this posterior share.
    double integrity_threshold = 0.8;
  };

  struct MatchResult {
    ElementId lanelet_id = kInvalidId;
    double arc_length = 0.0;
    double probability = 0.0;  ///< Posterior of the winning lane.
    bool has_integrity = false;
  };

  LaneMatcher(const HdMap* map, const Options& options);

  /// Processes one (position fix, heading, distance traveled) sample and
  /// returns the current lane belief.
  MatchResult Step(const Vec2& position_fix, double heading,
                   double distance_traveled);

  /// Resets the belief (e.g., after a tunnel).
  void Reset() { belief_.clear(); }

  const std::map<ElementId, double>& belief() const { return belief_; }

 private:
  const HdMap* map_;
  Options options_;
  std::map<ElementId, double> belief_;  // Lanelet id -> probability.
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_LANE_MATCHER_H_
