#include "core/serialization.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/binary_io.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"

namespace hdmap {

namespace {

constexpr uint32_t kFullMagic = 0x48444d46;     // "HDMF"
constexpr uint32_t kCompactMagic = 0x48444d43;  // "HDMC"
constexpr uint32_t kVersion = 1;

/// Strips and verifies the checksummed frame when `data` carries one;
/// bare buffers (the pre-frame wire format) pass through untouched so
/// legacy blobs keep deserializing.
Result<std::string_view> FramePayload(std::string_view data) {
  if (IsFramed(data)) return UnwrapFrame(data);
  return data;
}

void WriteLineString(BufferWriter& w, const LineString& ls) {
  w.WriteU32(static_cast<uint32_t>(ls.size()));
  for (const Vec2& p : ls.points()) {
    w.WriteF64(p.x);
    w.WriteF64(p.y);
  }
}

/// Validates an untrusted element count against the bytes actually
/// remaining in the buffer (`min_element_size` is a lower bound on the
/// wire size of one element) and only then reserves the full amount. A
/// flipped count byte latches kDataLoss on the reader — every decode
/// loop here conditions on r.ok(), so nothing allocates or spins.
template <typename T>
void GuardedReserve(BufferReader& r, std::vector<T>& v, uint32_t claimed,
                    size_t min_element_size) {
  if (r.CheckCount(claimed, min_element_size)) v.reserve(claimed);
}

LineString ReadLineString(BufferReader& r) {
  uint32_t n = r.ReadU32();
  std::vector<Vec2> pts;
  GuardedReserve(r, pts, n, 16);  // 2 x F64 per point.
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    double x = r.ReadF64();
    double y = r.ReadF64();
    pts.push_back({x, y});
  }
  return LineString(std::move(pts));
}

void WriteIds(BufferWriter& w, const std::vector<ElementId>& ids) {
  w.WriteU32(static_cast<uint32_t>(ids.size()));
  for (ElementId id : ids) w.WriteI64(id);
}

std::vector<ElementId> ReadIds(BufferReader& r) {
  uint32_t n = r.ReadU32();
  std::vector<ElementId> ids;
  GuardedReserve(r, ids, n, 8);  // I64 per id.
  for (uint32_t i = 0; i < n && r.ok(); ++i) ids.push_back(r.ReadI64());
  return ids;
}

// Element codecs shared by the full-map format and the patch format (the
// byte layout is the historical full-map one).

void WriteLanelet(BufferWriter& w, const Lanelet& ll) {
  w.WriteI64(ll.id);
  w.WriteI64(ll.left_boundary_id);
  w.WriteI64(ll.right_boundary_id);
  WriteLineString(w, ll.centerline);
  w.WriteU32(static_cast<uint32_t>(ll.elevation_profile.size()));
  for (double z : ll.elevation_profile) w.WriteF64(z);
  w.WriteF64(ll.speed_limit_mps);
  WriteIds(w, ll.successors);
  WriteIds(w, ll.predecessors);
  w.WriteI64(ll.left_neighbor);
  w.WriteI64(ll.right_neighbor);
  WriteIds(w, ll.regulatory_ids);
  w.WriteI64(ll.bundle_id);
}

Lanelet ReadLanelet(BufferReader& r) {
  Lanelet ll;
  ll.id = r.ReadI64();
  ll.left_boundary_id = r.ReadI64();
  ll.right_boundary_id = r.ReadI64();
  ll.centerline = ReadLineString(r);
  uint32_t nz = r.ReadU32();
  GuardedReserve(r, ll.elevation_profile, nz, 8);  // F64 per sample.
  for (uint32_t j = 0; j < nz && r.ok(); ++j) {
    ll.elevation_profile.push_back(r.ReadF64());
  }
  ll.speed_limit_mps = r.ReadF64();
  ll.successors = ReadIds(r);
  ll.predecessors = ReadIds(r);
  ll.left_neighbor = r.ReadI64();
  ll.right_neighbor = r.ReadI64();
  ll.regulatory_ids = ReadIds(r);
  ll.bundle_id = r.ReadI64();
  return ll;
}

void WriteRegulatoryElement(BufferWriter& w, const RegulatoryElement& reg) {
  w.WriteI64(reg.id);
  w.WriteU8(static_cast<uint8_t>(reg.type));
  w.WriteF64(reg.speed_limit_mps);
  w.WriteI64(reg.anchor_id);
  WriteIds(w, reg.lanelet_ids);
}

RegulatoryElement ReadRegulatoryElement(BufferReader& r) {
  RegulatoryElement reg;
  reg.id = r.ReadI64();
  reg.type = static_cast<RegulatoryType>(r.ReadU8());
  reg.speed_limit_mps = r.ReadF64();
  reg.anchor_id = r.ReadI64();
  reg.lanelet_ids = ReadIds(r);
  return reg;
}

/// Delta-encodes a polyline on a `quantum` grid: absolute first point
/// (int32 quanta), then int16 deltas with an escape for large jumps.
void WriteQuantizedLineString(BufferWriter& w, const LineString& ls,
                              double quantum) {
  w.WriteU32(static_cast<uint32_t>(ls.size()));
  int64_t prev_qx = 0;
  int64_t prev_qy = 0;
  bool first = true;
  for (const Vec2& p : ls.points()) {
    int64_t qx = static_cast<int64_t>(std::llround(p.x / quantum));
    int64_t qy = static_cast<int64_t>(std::llround(p.y / quantum));
    if (first) {
      w.WriteI32(static_cast<int32_t>(qx));
      w.WriteI32(static_cast<int32_t>(qy));
      first = false;
    } else {
      int64_t dx = qx - prev_qx;
      int64_t dy = qy - prev_qy;
      if (dx >= INT16_MIN && dx <= INT16_MAX && dy >= INT16_MIN &&
          dy <= INT16_MAX) {
        w.WriteI16(static_cast<int16_t>(dx));
        w.WriteI16(static_cast<int16_t>(dy));
      } else {
        // Escape: INT16_MIN sentinel followed by absolute coordinates.
        w.WriteI16(INT16_MIN);
        w.WriteI16(0);
        w.WriteI32(static_cast<int32_t>(qx));
        w.WriteI32(static_cast<int32_t>(qy));
      }
    }
    prev_qx = qx;
    prev_qy = qy;
  }
}

LineString ReadQuantizedLineString(BufferReader& r, double quantum) {
  uint32_t n = r.ReadU32();
  std::vector<Vec2> pts;
  GuardedReserve(r, pts, n, 4);  // 2 x I16 delta per point (minimum).
  int64_t qx = 0;
  int64_t qy = 0;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    if (i == 0) {
      qx = r.ReadI32();
      qy = r.ReadI32();
    } else {
      int16_t dx = r.ReadI16();
      int16_t dy = r.ReadI16();
      if (dx == INT16_MIN && dy == 0) {
        qx = r.ReadI32();
        qy = r.ReadI32();
      } else {
        qx += dx;
        qy += dy;
      }
    }
    pts.push_back({static_cast<double>(qx) * quantum,
                   static_cast<double>(qy) * quantum});
  }
  return LineString(std::move(pts));
}

}  // namespace

std::string SerializeMap(const HdMap& map) {
  BufferWriter w;
  w.WriteU32(kFullMagic);
  w.WriteU32(kVersion);

  w.WriteU32(static_cast<uint32_t>(map.landmarks().size()));
  for (const auto& [id, lm] : map.landmarks()) {
    w.WriteI64(id);
    w.WriteU8(static_cast<uint8_t>(lm.type));
    w.WriteF64(lm.position.x);
    w.WriteF64(lm.position.y);
    w.WriteF64(lm.position.z);
    w.WriteF64(lm.reflectivity);
    w.WriteString(lm.subtype);
  }

  w.WriteU32(static_cast<uint32_t>(map.line_features().size()));
  for (const auto& [id, lf] : map.line_features()) {
    w.WriteI64(id);
    w.WriteU8(static_cast<uint8_t>(lf.type));
    w.WriteF64(lf.reflectivity);
    WriteLineString(w, lf.geometry);
    w.WriteU32(static_cast<uint32_t>(lf.survey_points.size()));
    for (const Vec3& p : lf.survey_points) {
      w.WriteF32(static_cast<float>(p.x));
      w.WriteF32(static_cast<float>(p.y));
      w.WriteF32(static_cast<float>(p.z));
    }
  }

  w.WriteU32(static_cast<uint32_t>(map.area_features().size()));
  for (const auto& [id, af] : map.area_features()) {
    w.WriteI64(id);
    w.WriteU8(static_cast<uint8_t>(af.type));
    w.WriteU32(static_cast<uint32_t>(af.geometry.size()));
    for (const Vec2& p : af.geometry.vertices()) {
      w.WriteF64(p.x);
      w.WriteF64(p.y);
    }
  }

  w.WriteU32(static_cast<uint32_t>(map.lanelets().size()));
  for (const auto& [id, ll] : map.lanelets()) {
    (void)id;
    WriteLanelet(w, ll);
  }

  w.WriteU32(static_cast<uint32_t>(map.regulatory_elements().size()));
  for (const auto& [id, reg] : map.regulatory_elements()) {
    (void)id;
    WriteRegulatoryElement(w, reg);
  }

  w.WriteU32(static_cast<uint32_t>(map.lane_bundles().size()));
  for (const auto& [id, b] : map.lane_bundles()) {
    w.WriteI64(id);
    w.WriteI64(b.from_node);
    w.WriteI64(b.to_node);
    WriteIds(w, b.lanelet_ids);
  }

  w.WriteU32(static_cast<uint32_t>(map.map_nodes().size()));
  for (const auto& [id, n] : map.map_nodes()) {
    w.WriteI64(id);
    w.WriteF64(n.position.x);
    w.WriteF64(n.position.y);
    WriteIds(w, n.bundle_ids);
  }

  return WrapFrame(w.buffer());
}

Result<HdMap> DeserializeMap(std::string_view data) {
  HDMAP_ASSIGN_OR_RETURN(std::string_view payload, FramePayload(data));
  // Version dispatch on the payload magic: v3 payloads are validated and
  // materialized by the view machinery (the frame CRC was just checked
  // above, so Create only runs the structural pass); everything else
  // falls through to the v1 decoder below.
  if (payload.size() >= sizeof(uint32_t)) {
    uint32_t magic = 0;
    std::memcpy(&magic, payload.data(), sizeof(magic));
    if (magic == kTileV3Magic) {
      HDMAP_ASSIGN_OR_RETURN(TileView view, TileView::Create(payload));
      return view.Materialize();
    }
  }
  BufferReader r(payload);
  if (r.ReadU32() != kFullMagic) {
    return Status::DataLoss("bad magic: not a full HD map buffer");
  }
  if (r.ReadU32() != kVersion) {
    return Status::DataLoss("unsupported map version");
  }
  HdMap map;

  uint32_t num_landmarks = r.ReadU32();
  r.CheckCount(num_landmarks, 45);  // I64+U8+4xF64+string length.
  for (uint32_t i = 0; i < num_landmarks && r.ok(); ++i) {
    Landmark lm;
    lm.id = r.ReadI64();
    lm.type = static_cast<LandmarkType>(r.ReadU8());
    lm.position.x = r.ReadF64();
    lm.position.y = r.ReadF64();
    lm.position.z = r.ReadF64();
    lm.reflectivity = r.ReadF64();
    lm.subtype = r.ReadString();
    HDMAP_RETURN_IF_ERROR(map.AddLandmark(std::move(lm)));
  }

  uint32_t num_lines = r.ReadU32();
  r.CheckCount(num_lines, 25);  // I64+U8+F64+2 section counts.
  for (uint32_t i = 0; i < num_lines && r.ok(); ++i) {
    LineFeature lf;
    lf.id = r.ReadI64();
    lf.type = static_cast<LineType>(r.ReadU8());
    lf.reflectivity = r.ReadF64();
    lf.geometry = ReadLineString(r);
    uint32_t num_survey = r.ReadU32();
    GuardedReserve(r, lf.survey_points, num_survey, 12);  // 3 x F32.
    for (uint32_t j = 0; j < num_survey && r.ok(); ++j) {
      float x = r.ReadF32();
      float y = r.ReadF32();
      float z = r.ReadF32();
      lf.survey_points.push_back({x, y, z});
    }
    HDMAP_RETURN_IF_ERROR(map.AddLineFeature(std::move(lf)));
  }

  uint32_t num_areas = r.ReadU32();
  r.CheckCount(num_areas, 13);  // I64+U8+vertex count.
  for (uint32_t i = 0; i < num_areas && r.ok(); ++i) {
    AreaFeature af;
    af.id = r.ReadI64();
    af.type = static_cast<AreaType>(r.ReadU8());
    uint32_t nv = r.ReadU32();
    std::vector<Vec2> verts;
    GuardedReserve(r, verts, nv, 16);  // 2 x F64 per vertex.
    for (uint32_t j = 0; j < nv && r.ok(); ++j) {
      double x = r.ReadF64();
      double y = r.ReadF64();
      verts.push_back({x, y});
    }
    af.geometry = Polygon(std::move(verts));
    HDMAP_RETURN_IF_ERROR(map.AddAreaFeature(std::move(af)));
  }

  uint32_t num_lanelets = r.ReadU32();
  r.CheckCount(num_lanelets, 76);  // Fixed lanelet fields + counts.
  for (uint32_t i = 0; i < num_lanelets && r.ok(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddLanelet(ReadLanelet(r)));
  }

  uint32_t num_regs = r.ReadU32();
  r.CheckCount(num_regs, 29);  // I64+U8+F64+I64+id count.
  for (uint32_t i = 0; i < num_regs && r.ok(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddRegulatoryElement(ReadRegulatoryElement(r)));
  }

  uint32_t num_bundles = r.ReadU32();
  r.CheckCount(num_bundles, 28);  // 3 x I64 + id count.
  for (uint32_t i = 0; i < num_bundles && r.ok(); ++i) {
    LaneBundle b;
    b.id = r.ReadI64();
    b.from_node = r.ReadI64();
    b.to_node = r.ReadI64();
    b.lanelet_ids = ReadIds(r);
    HDMAP_RETURN_IF_ERROR(map.AddLaneBundle(std::move(b)));
  }

  uint32_t num_nodes = r.ReadU32();
  r.CheckCount(num_nodes, 28);  // I64+2xF64+id count.
  for (uint32_t i = 0; i < num_nodes && r.ok(); ++i) {
    MapNode n;
    n.id = r.ReadI64();
    n.position.x = r.ReadF64();
    n.position.y = r.ReadF64();
    n.bundle_ids = ReadIds(r);
    HDMAP_RETURN_IF_ERROR(map.AddMapNode(std::move(n)));
  }

  if (!r.ok()) return r.status();
  return map;
}

std::string SerializeCompactMap(const HdMap& map,
                                const CompactMapOptions& options) {
  BufferWriter w;
  w.WriteU32(kCompactMagic);
  w.WriteU32(kVersion);
  w.WriteF64(options.quantum);

  // Landmarks: signs/lights are navigation-relevant; keep quantized.
  w.WriteU32(static_cast<uint32_t>(map.landmarks().size()));
  for (const auto& [id, lm] : map.landmarks()) {
    w.WriteI64(id);
    w.WriteU8(static_cast<uint8_t>(lm.type));
    w.WriteI32(static_cast<int32_t>(std::llround(lm.position.x /
                                                 options.quantum)));
    w.WriteI32(static_cast<int32_t>(std::llround(lm.position.y /
                                                 options.quantum)));
    w.WriteI32(static_cast<int32_t>(std::llround(lm.position.z /
                                                 options.quantum)));
    w.WriteString(lm.subtype);
  }

  // Line features: simplified + quantized geometry; survey payloads are
  // dropped entirely — this is the bulk of the reduction [60].
  w.WriteU32(static_cast<uint32_t>(map.line_features().size()));
  for (const auto& [id, lf] : map.line_features()) {
    w.WriteI64(id);
    w.WriteU8(static_cast<uint8_t>(lf.type));
    WriteQuantizedLineString(
        w, lf.geometry.Simplified(options.simplify_tolerance),
        options.quantum);
  }

  // Lanelets: simplified + quantized centerlines, boundary refs,
  // topology and limits.
  w.WriteU32(static_cast<uint32_t>(map.lanelets().size()));
  for (const auto& [id, ll] : map.lanelets()) {
    w.WriteI64(id);
    w.WriteI64(ll.left_boundary_id);
    w.WriteI64(ll.right_boundary_id);
    WriteQuantizedLineString(
        w, ll.centerline.Simplified(options.simplify_tolerance),
        options.quantum);
    w.WriteF32(static_cast<float>(ll.speed_limit_mps));
    WriteIds(w, ll.successors);
    w.WriteI64(ll.left_neighbor);
    w.WriteI64(ll.right_neighbor);
  }
  return WrapFrame(w.buffer());
}

Result<HdMap> DeserializeCompactMap(std::string_view data) {
  HDMAP_ASSIGN_OR_RETURN(std::string_view payload, FramePayload(data));
  BufferReader r(payload);
  if (r.ReadU32() != kCompactMagic) {
    return Status::DataLoss("bad magic: not a compact map buffer");
  }
  if (r.ReadU32() != kVersion) {
    return Status::DataLoss("unsupported compact map version");
  }
  double quantum = r.ReadF64();
  HdMap map;

  uint32_t num_landmarks = r.ReadU32();
  r.CheckCount(num_landmarks, 25);  // I64+U8+3xI32+string length.
  for (uint32_t i = 0; i < num_landmarks && r.ok(); ++i) {
    Landmark lm;
    lm.id = r.ReadI64();
    lm.type = static_cast<LandmarkType>(r.ReadU8());
    lm.position.x = static_cast<double>(r.ReadI32()) * quantum;
    lm.position.y = static_cast<double>(r.ReadI32()) * quantum;
    lm.position.z = static_cast<double>(r.ReadI32()) * quantum;
    lm.subtype = r.ReadString();
    HDMAP_RETURN_IF_ERROR(map.AddLandmark(std::move(lm)));
  }

  uint32_t num_compact_lines = r.ReadU32();
  r.CheckCount(num_compact_lines, 13);  // I64+U8+point count.
  for (uint32_t i = 0; i < num_compact_lines && r.ok(); ++i) {
    LineFeature lf;
    lf.id = r.ReadI64();
    lf.type = static_cast<LineType>(r.ReadU8());
    lf.geometry = ReadQuantizedLineString(r, quantum);
    HDMAP_RETURN_IF_ERROR(map.AddLineFeature(std::move(lf)));
  }

  uint32_t num_lanelets = r.ReadU32();
  r.CheckCount(num_lanelets, 52);  // Fixed compact-lanelet fields.
  // Successor links may reference lanelets not yet inserted; collect and
  // fix up predecessors afterwards.
  std::vector<std::pair<ElementId, std::vector<ElementId>>> successor_links;
  for (uint32_t i = 0; i < num_lanelets && r.ok(); ++i) {
    Lanelet ll;
    ll.id = r.ReadI64();
    ll.left_boundary_id = r.ReadI64();
    ll.right_boundary_id = r.ReadI64();
    ll.centerline = ReadQuantizedLineString(r, quantum);
    ll.speed_limit_mps = r.ReadF32();
    ll.successors = ReadIds(r);
    ll.left_neighbor = r.ReadI64();
    ll.right_neighbor = r.ReadI64();
    successor_links.emplace_back(ll.id, ll.successors);
    HDMAP_RETURN_IF_ERROR(map.AddLanelet(std::move(ll)));
  }
  if (!r.ok()) return r.status();
  // Rebuild predecessor links from the stored successor lists.
  for (const auto& [from, successors] : successor_links) {
    for (ElementId to : successors) {
      Lanelet* target = map.FindMutableLanelet(to);
      if (target != nullptr) {
        target->predecessors.push_back(from);
      }
    }
  }
  return map;
}


namespace {
constexpr uint32_t kPatchMagic = 0x48444d50;  // "HDMP"
}  // namespace

std::string SerializePatch(const MapPatch& patch) {
  BufferWriter w;
  w.WriteU32(kPatchMagic);
  // Version 2 appends the relational-layer sections (updated/removed
  // lanelets and regulatory elements) after the v1 payload; v1 buffers
  // are still readable.
  w.WriteU32(2);

  w.WriteU32(static_cast<uint32_t>(patch.added_landmarks.size()));
  for (const Landmark& lm : patch.added_landmarks) {
    w.WriteI64(lm.id);
    w.WriteU8(static_cast<uint8_t>(lm.type));
    w.WriteF64(lm.position.x);
    w.WriteF64(lm.position.y);
    w.WriteF64(lm.position.z);
    w.WriteF64(lm.reflectivity);
    w.WriteString(lm.subtype);
  }
  w.WriteU32(static_cast<uint32_t>(patch.removed_landmarks.size()));
  for (ElementId id : patch.removed_landmarks) w.WriteI64(id);
  w.WriteU32(static_cast<uint32_t>(patch.moved_landmarks.size()));
  for (const MapPatch::Move& mv : patch.moved_landmarks) {
    w.WriteI64(mv.id);
    w.WriteF64(mv.new_position.x);
    w.WriteF64(mv.new_position.y);
    w.WriteF64(mv.new_position.z);
  }
  w.WriteU32(static_cast<uint32_t>(patch.updated_line_features.size()));
  for (const LineFeature& lf : patch.updated_line_features) {
    w.WriteI64(lf.id);
    w.WriteU8(static_cast<uint8_t>(lf.type));
    w.WriteF64(lf.reflectivity);
    w.WriteU32(static_cast<uint32_t>(lf.geometry.size()));
    for (const Vec2& p : lf.geometry.points()) {
      w.WriteF64(p.x);
      w.WriteF64(p.y);
    }
  }
  w.WriteU32(static_cast<uint32_t>(patch.updated_lanelets.size()));
  for (const Lanelet& ll : patch.updated_lanelets) WriteLanelet(w, ll);
  w.WriteU32(static_cast<uint32_t>(patch.removed_lanelets.size()));
  for (ElementId id : patch.removed_lanelets) w.WriteI64(id);
  w.WriteU32(static_cast<uint32_t>(patch.updated_regulatory_elements.size()));
  for (const RegulatoryElement& reg : patch.updated_regulatory_elements) {
    WriteRegulatoryElement(w, reg);
  }
  w.WriteU32(static_cast<uint32_t>(patch.removed_regulatory_elements.size()));
  for (ElementId id : patch.removed_regulatory_elements) w.WriteI64(id);
  return WrapFrame(w.buffer());
}

Result<MapPatch> DeserializePatch(std::string_view data) {
  HDMAP_ASSIGN_OR_RETURN(std::string_view payload, FramePayload(data));
  BufferReader r(payload);
  if (r.ReadU32() != kPatchMagic) {
    return Status::DataLoss("bad magic: not a map patch buffer");
  }
  uint32_t version = r.ReadU32();
  if (version != 1 && version != 2) {
    return Status::DataLoss("unsupported patch version");
  }
  MapPatch patch;
  uint32_t num_added = r.ReadU32();
  GuardedReserve(r, patch.added_landmarks, num_added, 45);
  for (uint32_t i = 0; i < num_added && r.ok(); ++i) {
    Landmark lm;
    lm.id = r.ReadI64();
    lm.type = static_cast<LandmarkType>(r.ReadU8());
    lm.position.x = r.ReadF64();
    lm.position.y = r.ReadF64();
    lm.position.z = r.ReadF64();
    lm.reflectivity = r.ReadF64();
    lm.subtype = r.ReadString();
    patch.added_landmarks.push_back(std::move(lm));
  }
  uint32_t num_removed = r.ReadU32();
  GuardedReserve(r, patch.removed_landmarks, num_removed, 8);
  for (uint32_t i = 0; i < num_removed && r.ok(); ++i) {
    patch.removed_landmarks.push_back(r.ReadI64());
  }
  uint32_t num_moved = r.ReadU32();
  GuardedReserve(r, patch.moved_landmarks, num_moved, 32);  // I64+3xF64.
  for (uint32_t i = 0; i < num_moved && r.ok(); ++i) {
    MapPatch::Move mv;
    mv.id = r.ReadI64();
    mv.new_position.x = r.ReadF64();
    mv.new_position.y = r.ReadF64();
    mv.new_position.z = r.ReadF64();
    patch.moved_landmarks.push_back(mv);
  }
  uint32_t num_lines = r.ReadU32();
  GuardedReserve(r, patch.updated_line_features, num_lines, 21);
  for (uint32_t i = 0; i < num_lines && r.ok(); ++i) {
    LineFeature lf;
    lf.id = r.ReadI64();
    lf.type = static_cast<LineType>(r.ReadU8());
    lf.reflectivity = r.ReadF64();
    uint32_t n = r.ReadU32();
    std::vector<Vec2> pts;
    GuardedReserve(r, pts, n, 16);
    for (uint32_t j = 0; j < n && r.ok(); ++j) {
      double x = r.ReadF64();
      double y = r.ReadF64();
      pts.push_back({x, y});
    }
    lf.geometry = LineString(std::move(pts));
    patch.updated_line_features.push_back(std::move(lf));
  }
  if (version >= 2) {
    uint32_t num_lanelets = r.ReadU32();
    GuardedReserve(r, patch.updated_lanelets, num_lanelets, 76);
    for (uint32_t i = 0; i < num_lanelets && r.ok(); ++i) {
      patch.updated_lanelets.push_back(ReadLanelet(r));
    }
    uint32_t num_removed_lanelets = r.ReadU32();
    GuardedReserve(r, patch.removed_lanelets, num_removed_lanelets, 8);
    for (uint32_t i = 0; i < num_removed_lanelets && r.ok(); ++i) {
      patch.removed_lanelets.push_back(r.ReadI64());
    }
    uint32_t num_regs = r.ReadU32();
    GuardedReserve(r, patch.updated_regulatory_elements, num_regs, 29);
    for (uint32_t i = 0; i < num_regs && r.ok(); ++i) {
      patch.updated_regulatory_elements.push_back(ReadRegulatoryElement(r));
    }
    uint32_t num_removed_regs = r.ReadU32();
    GuardedReserve(r, patch.removed_regulatory_elements, num_removed_regs,
                   8);
    for (uint32_t i = 0; i < num_removed_regs && r.ok(); ++i) {
      patch.removed_regulatory_elements.push_back(r.ReadI64());
    }
  }
  if (!r.ok()) return r.status();
  return patch;
}

}  // namespace hdmap
