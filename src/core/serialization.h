#ifndef HDMAP_CORE_SERIALIZATION_H_
#define HDMAP_CORE_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "core/hd_map.h"
#include "core/map_patch.h"

namespace hdmap {

// Wire format note: all three serializers emit their payload inside a
// CRC32-protected frame (core/wire_frame.h), so truncation, bit flips,
// and splices anywhere in the buffer are detected as kDataLoss at decode
// time. The deserializers also accept bare pre-frame payloads (the v1/v2
// legacy format) for backward compatibility. Framing adds a fixed
// 16-byte header and is deterministic: byte-identical inputs produce
// byte-identical framed outputs.

/// Full-fidelity binary serialization of an HdMap (all layers, double
/// precision, including dense survey payloads attached by the creation
/// pipelines). This is the "conventional HD map" representation whose
/// size Pannen et al. [44] report at ~10 MB/mile.
std::string SerializeMap(const HdMap& map);

/// Inverse of SerializeMap.
Result<HdMap> DeserializeMap(std::string_view data);

/// Options for the compact vector-map encoding (Li et al. [60]): keep
/// lane topology, speed limits, and signs; simplify geometry and quantize
/// to centimeter deltas; drop dense survey payloads entirely.
struct CompactMapOptions {
  /// Douglas-Peucker tolerance applied to polylines before encoding.
  double simplify_tolerance = 0.05;  // meters
  /// Quantization step for delta-encoded coordinates.
  double quantum = 0.01;  // meters (centimeter grid)
};

/// Compact, navigation-sufficient encoding (two orders of magnitude
/// smaller than SerializeMap on survey-carrying maps).
std::string SerializeCompactMap(const HdMap& map,
                                const CompactMapOptions& options = {});

/// Decodes a compact map. Geometry is reconstructed to within the
/// quantization error; survey payloads are absent.
Result<HdMap> DeserializeCompactMap(std::string_view data);

/// Serializes a map changeset — the payload a vehicle/RSU uploads and a
/// map service broadcasts as an incremental update.
std::string SerializePatch(const MapPatch& patch);

/// Inverse of SerializePatch.
Result<MapPatch> DeserializePatch(std::string_view data);

}  // namespace hdmap

#endif  // HDMAP_CORE_SERIALIZATION_H_
