# Empty dependencies file for bench_e6_raster_loc.
# This may be replaced when dependencies are built.
