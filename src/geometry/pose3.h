#ifndef HDMAP_GEOMETRY_POSE3_H_
#define HDMAP_GEOMETRY_POSE3_H_

#include <ostream>

#include "common/units.h"
#include "geometry/pose2.h"
#include "geometry/vec3.h"

namespace hdmap {

/// 6-DoF pose parameterized as translation + roll/pitch/yaw (Z-Y-X Euler,
/// applied yaw, then pitch, then roll). Sufficient for vehicle poses, where
/// roll/pitch stay far from the gimbal-lock singularity.
struct Pose3 {
  Vec3 translation;
  double roll = 0.0;
  double pitch = 0.0;
  double yaw = 0.0;

  constexpr Pose3() = default;
  Pose3(Vec3 t, double roll_in, double pitch_in, double yaw_in)
      : translation(t),
        roll(WrapAngle(roll_in)),
        pitch(WrapAngle(pitch_in)),
        yaw(WrapAngle(yaw_in)) {}

  /// Embeds an SE(2) pose at elevation z with zero roll/pitch.
  static Pose3 FromPose2(const Pose2& p, double z = 0.0) {
    return Pose3(Vec3(p.translation, z), 0.0, 0.0, p.heading);
  }

  /// Projects to SE(2) (drops z, roll, pitch).
  Pose2 ToPose2() const { return Pose2(translation.xy(), yaw); }

  /// Maps a point from the local (body) frame into the parent frame.
  Vec3 TransformPoint(const Vec3& local) const {
    // R = Rz(yaw) * Ry(pitch) * Rx(roll).
    double cr = std::cos(roll), sr = std::sin(roll);
    double cp = std::cos(pitch), sp = std::sin(pitch);
    double cy = std::cos(yaw), sy = std::sin(yaw);
    double x = local.x, y = local.y, z = local.z;
    Vec3 rotated{
        cy * cp * x + (cy * sp * sr - sy * cr) * y +
            (cy * sp * cr + sy * sr) * z,
        sy * cp * x + (sy * sp * sr + cy * cr) * y +
            (sy * sp * cr - cy * sr) * z,
        -sp * x + cp * sr * y + cp * cr * z};
    return translation + rotated;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Pose3& p) {
  return os << "[t=" << p.translation << ", rpy=(" << p.roll << ", "
            << p.pitch << ", " << p.yaw << ")]";
}

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_POSE3_H_
