#include "service/map_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/serialization.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

ElementId FirstLandmarkId(const HdMap& map) {
  EXPECT_FALSE(map.landmarks().empty());
  return map.landmarks().begin()->first;
}

MapService::Options SmallTileOptions() {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  return opt;
}

TEST(MapServiceTest, ReadersFailBeforeInit) {
  MapService service;
  EXPECT_EQ(service.version(), 0u);
  EXPECT_EQ(service.snapshot(), nullptr);
  EXPECT_EQ(service.GetRegion(Aabb{{0, 0}, {10, 10}}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.MatchToLane({0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Route(1, 2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Publish().code(), StatusCode::kFailedPrecondition);
}

TEST(MapServiceTest, InitServesAllEndpoints) {
  MapService service(SmallTileOptions());
  HdMap world = StraightRoad(500.0);
  size_t num_landmarks = world.landmarks().size();
  ASSERT_TRUE(service.Init(std::move(world)).ok());
  EXPECT_EQ(service.version(), 1u);
  ASSERT_NE(service.snapshot(), nullptr);

  auto region = service.GetRegion(service.snapshot()->map.BoundingBox());
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->landmarks().size(), num_landmarks);

  auto tile = service.GetTile(service.snapshot()->tiles.TileAt({10, 0}));
  ASSERT_TRUE(tile.ok());
  EXPECT_GT(tile->NumElements(), 0u);

  auto match = service.MatchToLane({50.0, -1.75});
  ASSERT_TRUE(match.ok());

  ElementId lane = match->lanelet_id;
  auto route = service.Route(lane, lane);
  EXPECT_TRUE(route.ok());

  EXPECT_GE(service.SnapshotAgeSeconds(), 0.0);
}

TEST(MapServiceTest, GetTileViewServesAndPinsAcrossPublish) {
  MapService::Options opt = SmallTileOptions();
  opt.tile_store.format = TileFormat::kFlatV3;  // Views need v3 bytes.
  MapService service(opt);
  EXPECT_EQ(service.GetTileView(TileId{0, 0}).status().code(),
            StatusCode::kFailedPrecondition);  // Before Init.
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());

  TileId id = service.snapshot()->tiles.TileAt({10, 0});
  auto view = service.GetTileView(id);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->version, 1u);
  EXPECT_GT(view->tile.view.NumElements(), 0u);
  size_t lanelets_before = view->tile.view.num_lanelets();

  // Publish a new version: the held view keeps serving the old bytes
  // (the pin outlives the snapshot it came from), while a fresh call
  // reports the new version.
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {sign, service.snapshot()->map.FindLandmark(sign)->position +
                 Vec3{1.0, 0.0, 0.0}});
  service.StagePatch(patch);
  ASSERT_TRUE(service.Publish().ok());

  EXPECT_EQ(view->tile.view.num_lanelets(), lanelets_before);
  ASSERT_TRUE(view->tile.view.Materialize().ok());
  auto fresh = service.GetTileView(id);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->version, 2u);

  // View and decode agree on content (same post-publish version).
  auto tile = service.GetTile(id);
  ASSERT_TRUE(tile.ok());
  auto materialized = fresh->tile.view.Materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(SerializeMap(*materialized), SerializeMap(*tile));
}

TEST(MapServiceTest, HeldSnapshotIsIsolatedFromPublish) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());

  std::shared_ptr<const MapSnapshot> before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;
  Vec3 new_pos = old_pos + Vec3{1.0, 1.0, 0.0};

  MapPatch patch;
  patch.moved_landmarks.push_back({sign, new_pos});
  service.StagePatch(patch);
  EXPECT_EQ(service.NumStagedPatches(), 1u);
  ASSERT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.NumStagedPatches(), 0u);

  // The pre-publish snapshot shows zero effects of the patch, in both the
  // stitched map and the serialized tiles it serves.
  EXPECT_EQ(before->version, 1u);
  EXPECT_EQ(before->map.FindLandmark(sign)->position, old_pos);
  auto old_region = before->tiles.LoadRegion(before->map.BoundingBox());
  ASSERT_TRUE(old_region.ok());
  EXPECT_EQ(old_region->FindLandmark(sign)->position, old_pos);

  // Post-publish readers see all of it.
  std::shared_ptr<const MapSnapshot> after = service.snapshot();
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->map.FindLandmark(sign)->position, new_pos);
  auto new_region = service.GetRegion(after->map.BoundingBox());
  ASSERT_TRUE(new_region.ok());
  EXPECT_EQ(new_region->FindLandmark(sign)->position, new_pos);
}

TEST(MapServiceTest, CowTilesMatchFullRebuild) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();

  MapPatch patch;
  ElementId sign = FirstLandmarkId(before->map);
  // Move a landmark across tiles and add one in untouched space.
  patch.moved_landmarks.push_back(
      {sign, before->map.FindLandmark(sign)->position + Vec3{150, 0, 0}});
  Landmark fresh;
  fresh.id = 99001;
  fresh.position = {321.0, 2.0, 1.0};
  patch.added_landmarks.push_back(fresh);
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  auto after = service.snapshot();
  // Copy-on-write must be indistinguishable from a from-scratch build of
  // the patched map: byte-identical tiles under the same options.
  TileStore full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(full.Build(after->map).ok());
  EXPECT_EQ(after->tiles.RawTilesCopy(), full.RawTilesCopy());
  // And the previous snapshot's store was left byte-identical to its own
  // full build.
  TileStore old_full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(old_full.Build(before->map).ok());
  EXPECT_EQ(before->tiles.RawTilesCopy(), old_full.RawTilesCopy());
}

TEST(MapServiceTest, CowTilesMatchFullRebuildOnRelationalPatch) {
  HdMap world = StraightRoad(500.0);
  ElementId lane_id = world.lanelets().begin()->first;
  RegulatoryElement reg;
  reg.id = 77001;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {lane_id};
  ASSERT_TRUE(world.AddRegulatoryElement(reg).ok());
  world.FindMutableLanelet(lane_id)->regulatory_ids.push_back(reg.id);

  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(std::move(world)).ok());
  auto before = service.snapshot();

  // Shorten the regulated lanelet and tighten its speed limit in one
  // patch: both changes ripple through every tile the lanelet occupies.
  Lanelet shorter = *before->map.FindLanelet(lane_id);
  std::vector<Vec2> pts(shorter.centerline.points().begin(),
                        shorter.centerline.points().end() - 2);
  shorter.centerline = LineString(std::move(pts));
  reg.speed_limit_mps = 6.0;

  MapPatch patch;
  patch.updated_lanelets.push_back(shorter);
  patch.updated_regulatory_elements.push_back(reg);
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  auto after = service.snapshot();
  EXPECT_NEAR(after->map.EffectiveSpeedLimit(lane_id), 6.0, 1e-9);
  TileStore full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(full.Build(after->map).ok());
  EXPECT_EQ(after->tiles.RawTilesCopy(), full.RawTilesCopy());
}

TEST(MapServiceTest, PublishIsAllOrNothing) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;

  MapPatch good;
  good.moved_landmarks.push_back({sign, old_pos + Vec3{1, 0, 0}});
  MapPatch bad;
  bad.removed_landmarks.push_back(987654);  // No such landmark.
  service.StagePatch(good);
  service.StagePatch(bad);

  EXPECT_EQ(service.Publish().code(), StatusCode::kNotFound);
  // Nothing published, no version consumed, queue intact.
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign)->position, old_pos);
  EXPECT_EQ(service.NumStagedPatches(), 2u);
  service.DiscardStagedPatches();
  EXPECT_EQ(service.NumStagedPatches(), 0u);
  // An empty publish is a no-op, not a version bump.
  EXPECT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.version(), 1u);
}

TEST(MapServiceTest, RoutingGraphSharedWhenTopologyUntouched) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto v1 = service.snapshot();

  MapPatch landmarks_only;
  ElementId sign = FirstLandmarkId(v1->map);
  landmarks_only.moved_landmarks.push_back(
      {sign, v1->map.FindLandmark(sign)->position + Vec3{0.5, 0, 0}});
  ASSERT_TRUE(service.ApplyPatch(landmarks_only).ok());
  auto v2 = service.snapshot();
  EXPECT_EQ(v2->routing, v1->routing);  // Shared, not rebuilt.

  MapPatch topology;
  topology.removed_lanelets.push_back(v1->map.lanelets().begin()->first);
  ASSERT_TRUE(service.ApplyPatch(topology).ok());
  auto v3 = service.snapshot();
  EXPECT_NE(v3->routing, v2->routing);  // Rebuilt for the new topology.
}

TEST(MapServiceTest, MetricsFlowThroughRegistry) {
  MetricsRegistry registry;
  MapService::Options opt = SmallTileOptions();
  opt.metrics = &registry;
  MapService service(opt);
  EXPECT_EQ(&service.metrics(), &registry);

  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  Aabb box = service.snapshot()->map.BoundingBox();
  ASSERT_TRUE(service.GetRegion(box).ok());
  ASSERT_TRUE(service.GetRegion(box).ok());
  (void)service.MatchToLane({1e9, 1e9});  // An error.

  MapPatch patch;
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  patch.moved_landmarks.push_back(
      {sign, service.snapshot()->map.FindLandmark(sign)->position});
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  EXPECT_GE(registry.GetCounter("map_service.requests")->value(), 3u);
  EXPECT_GE(registry.GetCounter("map_service.errors")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("map_service.patches_published")->value(),
            1u);
  EXPECT_EQ(registry.GetGauge("map_service.snapshot_version")->value(), 2.0);
  EXPECT_EQ(registry.GetLatency("map_service.get_region")->count(), 2u);
  EXPECT_EQ(registry.GetLatency("map_service.publish")->count(), 1u);
  // The snapshot's tile cache exports through the same registry: the two
  // identical region loads give the second one cache hits.
  EXPECT_GT(registry.GetCounter("tile_store.cache_hits")->value(), 0u);
}

TEST(MapServiceTest, ReInitKeepsVersionMonotonic) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  ASSERT_TRUE(service.Init(StraightRoad(400.0)).ok());
  EXPECT_EQ(service.version(), 2u);
}

TEST(MapServiceTest, PatchSurvivesSerializationIntoPublish) {
  // The fleet-side flow: a patch arrives on the wire, is decoded, and
  // published as one version.
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  MapPatch patch;
  patch.removed_landmarks.push_back(sign);

  auto decoded = DeserializePatch(SerializePatch(patch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(service.ApplyPatch(*std::move(decoded)).ok());
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign), nullptr);
}

TEST(MapServiceFaultTest, InjectedPublishFaultLeavesServiceIntact) {
  FaultInjector faults(7);
  faults.AddPolicy({MapService::kPublishFaultSite, FaultKind::kFailStatus,
                    1.0, StatusCode::kInternal});
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;

  MapPatch patch;
  patch.moved_landmarks.push_back({sign, old_pos + Vec3{1, 0, 0}});
  service.StagePatch(patch);

  // The injected failure aborts the publish after the expensive work;
  // nothing rolls forward.
  EXPECT_EQ(service.Publish().code(), StatusCode::kInternal);
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.snapshot(), before);
  EXPECT_EQ(service.NumStagedPatches(), 1u);
  // Old snapshot keeps serving reads throughout.
  EXPECT_TRUE(service.GetRegion(before->map.BoundingBox()).ok());

  // Fault lifted: the same staged patch publishes cleanly.
  faults.ClearPolicies();
  ASSERT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.version(), 2u);
  EXPECT_EQ(service.NumStagedPatches(), 0u);
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign)->position,
            (old_pos + Vec3{1, 0, 0}));
}

TEST(MapServiceFaultTest, DegradedRegionsCountAndDriveHealth) {
  FaultInjector faults(21);
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  Aabb world_box = service.snapshot()->map.BoundingBox();
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);

  // Corrupt every tile load from here on.
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  RegionReport report;
  auto region = service.GetRegion(world_box, &report);
  // Partial mode: the request still succeeds, served around the holes.
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_FALSE(report.corrupt_tiles.empty());
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.errors")->value(), 0u);
  EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);

  // A degraded region observed without a caller-supplied report still
  // counts.
  ASSERT_TRUE(service.GetRegion(world_box).ok());
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            2u);

  // Single-tile loads surface the data loss as a per-code error.
  auto tile = service.GetTile(service.snapshot()->tiles.TileAt({10, 0}));
  ASSERT_FALSE(tile.ok());
  EXPECT_EQ(tile.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(
      service.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.errors")->value(), 1u);

  // A successful publish swaps in freshly built tiles and re-baselines
  // health back to serving.
  faults.ClearPolicies();
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {sign,
       service.snapshot()->map.FindLandmark(sign)->position + Vec3{1, 0, 0}});
  ASSERT_TRUE(service.ApplyPatch(patch).ok());
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
  ASSERT_TRUE(service.GetRegion(world_box, &report).ok());
  EXPECT_TRUE(report.corrupt_tiles.empty());
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
}

TEST(MapServiceFaultTest, StrictReadsFailInsteadOfDegrading) {
  FaultInjector faults(33);
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  opt.strict_reads = true;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());

  auto region = service.GetRegion(service.snapshot()->map.BoundingBox());
  ASSERT_FALSE(region.ok());
  EXPECT_EQ(region.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(
      service.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            0u);
  EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);
}

// --- Durability & recovery ---

namespace fs = std::filesystem;

class ScopedDataDir {
 public:
  explicit ScopedDataDir(const std::string& tag) {
    path_ = fs::path(::testing::TempDir()) /
            ("hdmap_service_durability_" + tag + "_" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedDataDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

MapService::Options DurableOptions(const std::string& data_dir) {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  opt.durability.data_dir = data_dir;
  // Tests hammer many tiny checkpoints; skipping fsync keeps them fast
  // without changing any code path under test.
  opt.durability.fsync = FsyncMode::kNever;
  return opt;
}

size_t CountCheckpoints(const std::string& data_dir) {
  fs::path root = fs::path(data_dir) / "checkpoints";
  if (!fs::exists(root)) return 0;
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("v", 0) == 0) {
      ++n;
    }
  }
  return n;
}

TEST(MapServiceDurabilityTest, NonDurableServiceTouchesNoDisk) {
  MapService service(SmallTileOptions());
  EXPECT_FALSE(service.durable());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {FirstLandmarkId(service.snapshot()->map), {1, 2, 3}});
  EXPECT_TRUE(service.StagePatch(patch).ok());
  EXPECT_TRUE(service.Publish().ok());
}

TEST(MapServiceDurabilityTest, InitBootstrapsCheckpointAndEmptyWal) {
  ScopedDataDir dir("bootstrap");
  MapService service(DurableOptions(dir.str()));
  EXPECT_TRUE(service.durable());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  EXPECT_EQ(CountCheckpoints(dir.str()), 1u);
  // Nothing staged yet, so the rewritten WAL is empty.
  EXPECT_EQ(
      service.metrics().GetGauge("wal.size_bytes")->value(), 0.0);
}

TEST(MapServiceDurabilityTest, RestartRecoversPublishedState) {
  ScopedDataDir dir("restart");
  ElementId sign = 0;
  Vec3 new_pos;
  std::map<uint64_t, std::string> published_bytes;
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    sign = FirstLandmarkId(service.snapshot()->map);
    new_pos =
        service.snapshot()->map.FindLandmark(sign)->position + Vec3{5, 0, 0};
    MapPatch patch;
    patch.moved_landmarks.push_back({sign, new_pos});
    ASSERT_TRUE(service.ApplyPatch(patch).ok());
    EXPECT_EQ(service.version(), 2u);
    published_bytes = service.snapshot()->tiles.RawTilesCopy();
  }  // "Crash": the service goes away, only the data_dir survives.

  MapService revived(DurableOptions(dir.str()));
  // The bootstrap map is ignored: durable state outranks it.
  ASSERT_TRUE(revived.Init(StraightRoad(100.0)).ok());
  EXPECT_EQ(revived.version(), 2u);
  EXPECT_EQ(revived.snapshot()->map.FindLandmark(sign)->position, new_pos);
  // Byte-exact: recovery re-serves exactly the published tiles.
  EXPECT_EQ(revived.snapshot()->tiles.RawTilesCopy(), published_bytes);
  // A clean recovery is not a degradation.
  EXPECT_EQ(revived.Health(), ServiceHealth::kServing);
  EXPECT_EQ(revived.metrics().GetCounter("storage.recoveries")->value(), 1u);
  // Age is continuous across the restart (back-dated from the persisted
  // wall-clock stamp), not reset to zero-at-boot.
  EXPECT_GE(revived.SnapshotAgeSeconds(), 0.0);
  // And it keeps serving + publishing.
  ASSERT_TRUE(
      revived.GetRegion(revived.snapshot()->map.BoundingBox()).ok());
  MapPatch more;
  more.moved_landmarks.push_back({sign, new_pos + Vec3{1, 0, 0}});
  ASSERT_TRUE(revived.ApplyPatch(more).ok());
  EXPECT_EQ(revived.version(), 3u);
}

TEST(MapServiceDurabilityTest, AckedUnpublishedPatchSurvivesRestart) {
  ScopedDataDir dir("staged");
  ElementId sign = 0;
  Vec3 new_pos;
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    sign = FirstLandmarkId(service.snapshot()->map);
    new_pos =
        service.snapshot()->map.FindLandmark(sign)->position + Vec3{2, 2, 0};
    MapPatch patch;
    patch.moved_landmarks.push_back({sign, new_pos});
    // Acked (WAL-fsynced) but never published.
    ASSERT_TRUE(service.StagePatch(patch).ok());
  }

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  // The replayed patch folds into one recovered publish past v1.
  EXPECT_EQ(revived.version(), 2u);
  EXPECT_EQ(revived.snapshot()->map.FindLandmark(sign)->position, new_pos);
  EXPECT_EQ(revived.metrics().GetCounter("wal.replayed_records")->value(),
            1u);
  // Recovery re-checkpointed, so a second restart replays nothing and
  // lands on the same state (recovery is idempotent).
  auto recovered_bytes = revived.snapshot()->tiles.RawTilesCopy();
  MapService again(DurableOptions(dir.str()));
  ASSERT_TRUE(again.Init(HdMap()).ok());
  EXPECT_EQ(again.version(), 2u);
  EXPECT_EQ(again.snapshot()->tiles.RawTilesCopy(), recovered_bytes);
  EXPECT_EQ(again.metrics().GetCounter("wal.replayed_records")->value(), 0u);
}

TEST(MapServiceDurabilityTest, UncheckpointedPublishSurvivesViaWal) {
  ScopedDataDir dir("wal_only");
  ElementId sign = 0;
  Vec3 final_pos;
  {
    MapService::Options opt = DurableOptions(dir.str());
    // Effectively "never checkpoint after bootstrap": every publish
    // survives through the WAL alone.
    opt.durability.checkpoint_every_n_publishes = 1000;
    MapService service(opt);
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    sign = FirstLandmarkId(service.snapshot()->map);
    Vec3 pos = service.snapshot()->map.FindLandmark(sign)->position;
    for (int i = 0; i < 3; ++i) {
      pos = pos + Vec3{1, 0, 0};
      MapPatch patch;
      patch.moved_landmarks.push_back({sign, pos});
      ASSERT_TRUE(service.ApplyPatch(patch).ok());
    }
    final_pos = pos;
    EXPECT_EQ(service.version(), 4u);
    EXPECT_EQ(CountCheckpoints(dir.str()), 1u);  // Only the bootstrap.
  }

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  EXPECT_EQ(revived.snapshot()->map.FindLandmark(sign)->position, final_pos);
  EXPECT_EQ(revived.metrics().GetCounter("wal.replayed_records")->value(),
            3u);
  EXPECT_GE(revived.version(), 4u);
}

TEST(MapServiceDurabilityTest, CheckpointEveryNSkipsIntermediatePublishes) {
  ScopedDataDir dir("every_n");
  MapService::Options opt = DurableOptions(dir.str());
  opt.durability.checkpoint_every_n_publishes = 2;
  opt.durability.retention = 10;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  EXPECT_EQ(CountCheckpoints(dir.str()), 1u);
  ElementId sign = FirstLandmarkId(service.snapshot()->map);

  MapPatch patch;
  patch.moved_landmarks.push_back(
      {sign, service.snapshot()->map.FindLandmark(sign)->position});
  ASSERT_TRUE(service.ApplyPatch(patch).ok());   // Publish 1: no checkpoint.
  EXPECT_EQ(CountCheckpoints(dir.str()), 1u);
  EXPECT_GT(service.metrics().GetGauge("wal.size_bytes")->value(), 0.0);
  ASSERT_TRUE(service.ApplyPatch(patch).ok());   // Publish 2: checkpoint.
  EXPECT_EQ(CountCheckpoints(dir.str()), 2u);
  EXPECT_EQ(service.metrics().GetGauge("wal.size_bytes")->value(), 0.0);
}

TEST(MapServiceDurabilityTest, TornNewestCheckpointFallsBackDegraded) {
  ScopedDataDir dir("fallback");
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    MapPatch patch;
    ElementId sign = FirstLandmarkId(service.snapshot()->map);
    patch.moved_landmarks.push_back(
        {sign,
         service.snapshot()->map.FindLandmark(sign)->position + Vec3{9, 0, 0}});
    ASSERT_TRUE(service.ApplyPatch(patch).ok());  // Checkpoint v2.
  }
  // Tear the newest checkpoint's manifest (the zero-padded version in the
  // directory name sorts lexically).
  fs::path newest;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir.str()) / "checkpoints")) {
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  fs::path v2_manifest = newest / "manifest.bin";
  ASSERT_TRUE(fs::exists(v2_manifest));
  fs::resize_file(v2_manifest, fs::file_size(v2_manifest) / 2);

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  // Fell back to the bootstrap checkpoint and said so.
  EXPECT_EQ(revived.version(), 1u);
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);
  EXPECT_EQ(
      revived.metrics().GetCounter("storage.checkpoints_invalid")->value(),
      1u);
  EXPECT_GE(
      revived.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      1u);
  // Degraded, but serving: a fresh publish clears the flag.
  MapPatch patch;
  ElementId sign = FirstLandmarkId(revived.snapshot()->map);
  patch.moved_landmarks.push_back(
      {sign, revived.snapshot()->map.FindLandmark(sign)->position});
  ASSERT_TRUE(revived.ApplyPatch(patch).ok());
  EXPECT_EQ(revived.Health(), ServiceHealth::kServing);
}

TEST(MapServiceDurabilityTest, TotalCheckpointLossFallsBackToBootstrapMap) {
  ScopedDataDir dir("total_loss");
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  }
  // Destroy every checkpoint's manifest.
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir.str()) / "checkpoints")) {
    fs::remove(entry.path() / "manifest.bin");
  }
  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(StraightRoad(150.0)).ok());
  // Served from the bootstrap map, flagged degraded, and re-persisted.
  EXPECT_EQ(revived.version(), 1u);
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);
  MapService again(DurableOptions(dir.str()));
  ASSERT_TRUE(again.Init(HdMap()).ok());
  EXPECT_EQ(again.snapshot()->map.lanelets().size(),
            revived.snapshot()->map.lanelets().size());
}

TEST(MapServiceDurabilityTest, TotalLossPreservesOrphanedWalRecords) {
  ScopedDataDir dir("total_loss_wal");
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    MapPatch patch;
    ElementId sign = FirstLandmarkId(service.snapshot()->map);
    patch.moved_landmarks.push_back(
        {sign, service.snapshot()->map.FindLandmark(sign)->position});
    // Acked (WAL-fsynced) but never published nor checkpointed.
    ASSERT_TRUE(service.StagePatch(patch).ok());
  }
  // Destroy every checkpoint: the WAL record's base state is gone.
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir.str()) / "checkpoints")) {
    fs::remove(entry.path() / "manifest.bin");
  }

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(StraightRoad(150.0)).ok());
  EXPECT_EQ(revived.version(), 1u);
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);
  // The orphaned record is counted on top of the checkpoint loss, not
  // silently folded into a single event...
  EXPECT_GE(
      revived.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      2u);
  // ...and its bytes are set aside for salvage, not erased by the
  // bootstrap checkpoint's WAL trim.
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / "wal" / "patches.wal.lost"));
  EXPECT_EQ(revived.metrics().GetGauge("wal.size_bytes")->value(), 0.0);
  EXPECT_EQ(CountCheckpoints(dir.str()), 1u);  // Bootstrap re-persisted.
}

TEST(MapServiceDurabilityTest, UnappliableWalRecordLeavesNoPartialState) {
  ScopedDataDir dir("wal_half_apply");
  constexpr ElementId kGhost = 987654;  // Never existed in any version.
  constexpr ElementId kExtra = 777777;
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    // One record whose adds succeed but whose move then fails: replay
    // must apply all of it or none of it.
    MapPatch patch;
    Landmark extra;
    extra.id = kExtra;
    extra.position = {5.0, -4.0, 1.0};
    patch.added_landmarks.push_back(extra);
    patch.moved_landmarks.push_back({kGhost, {1, 2, 3}});
    ASSERT_TRUE(service.StagePatch(patch).ok());
  }

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  // The record was skipped whole: the added landmark from its first half
  // must not have leaked into the served snapshot.
  EXPECT_EQ(revived.snapshot()->map.FindLandmark(kExtra), nullptr);
  EXPECT_EQ(revived.version(), 1u);
  EXPECT_EQ(
      revived.metrics().GetCounter("wal.replay_apply_failures")->value(), 1u);
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);
}

TEST(MapServiceDurabilityTest, WalAppendFailureRejectsTheAck) {
  ScopedDataDir dir("wal_fail");
  FaultInjector faults(3);
  MapService::Options opt = DurableOptions(dir.str());
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());

  faults.AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kFailStatus, 1.0,
                    StatusCode::kInternal});
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {FirstLandmarkId(service.snapshot()->map), {1, 2, 3}});
  EXPECT_EQ(service.StagePatch(patch).code(), StatusCode::kInternal);
  // Not acked => not staged: the caller knows to retry.
  EXPECT_EQ(service.NumStagedPatches(), 0u);
  faults.ClearPolicies();
  EXPECT_TRUE(service.StagePatch(patch).ok());
  EXPECT_EQ(service.NumStagedPatches(), 1u);
}

TEST(MapServiceDurabilityTest, TornWalRecordIsSkippedAndCounted) {
  ScopedDataDir dir("wal_torn");
  ElementId sign = 0;
  {
    FaultInjector faults(11);
    MapService::Options opt = DurableOptions(dir.str());
    opt.fault_injector = &faults;
    MapService service(opt);
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    sign = FirstLandmarkId(service.snapshot()->map);
    MapPatch good;
    good.moved_landmarks.push_back(
        {sign, service.snapshot()->map.FindLandmark(sign)->position});
    ASSERT_TRUE(service.StagePatch(good).ok());
    // The second acked record is scribbled on its way to disk.
    faults.AddPolicy({PatchWal::kAppendFaultSite, FaultKind::kTornWrite,
                      1.0});
    ASSERT_TRUE(service.StagePatch(good).ok());
  }

  MapService revived(DurableOptions(dir.str()));
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  EXPECT_EQ(revived.metrics().GetCounter("wal.replayed_records")->value(),
            1u);
  EXPECT_GE(revived.metrics().GetCounter("wal.replay_skipped")->value(), 1u);
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);
}

// --- Observability: structured events + request tracing ---

/// Enables the process-global trace recorder for one test and restores
/// the disabled default on exit (other tests assume tracing off).
class ScopedGlobalTracing {
 public:
  explicit ScopedGlobalTracing(const TraceRecorder::Options& opts) {
    TraceRecorder::Global().Configure(opts);
  }
  ~ScopedGlobalTracing() {
    TraceRecorder::Global().Configure(TraceRecorder::Options{});
  }
};

TEST(MapServiceObservabilityTest, RecentEventsExplainEveryDegradedRegion) {
  TraceRecorder::Options trace_opts;
  trace_opts.enabled = true;
  trace_opts.sample_every_n = 0;  // Only error/slow spans record.
  ScopedGlobalTracing tracing(trace_opts);

  FaultInjector faults(21);
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  Aabb world_box = service.snapshot()->map.BoundingBox();
  uint64_t events_before = service.event_log().total_appended();

  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  ASSERT_TRUE(service.GetRegion(world_box).ok());
  ASSERT_TRUE(service.GetRegion(world_box).ok());
  EXPECT_EQ(
      service.metrics().GetCounter("map_service.regions_degraded")->value(),
      2u);

  // One QUARANTINED_TILE event per regions_degraded increment, newest
  // first, each carrying the trace id of the request that observed it.
  std::vector<EventLog::Event> events = service.RecentEvents();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(service.event_log().total_appended() - events_before, 2u);
  EXPECT_GT(events[0].seq, events[1].seq);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(events[i].type, EventLog::Type::kQuarantinedTile);
    EXPECT_EQ(events[i].code, StatusCode::kDataLoss);
    EXPECT_NE(events[i].trace_id, 0u);
    EXPECT_NE(events[i].detail.find("corrupt tile"), std::string::npos)
        << events[i].detail;
  }

  // Each event's trace id joins back to a recorded get_region root span
  // (forced into the ring by its DATA_LOSS status despite sampling off).
  std::set<uint64_t> root_traces;
  for (const TraceEvent& e : TraceRecorder::Global().Snapshot()) {
    if (std::string(e.name) == "map_service.get_region") {
      EXPECT_EQ(e.status, StatusCode::kDataLoss);
      root_traces.insert(e.trace_id);
    }
  }
  EXPECT_EQ(root_traces.count(events[0].trace_id), 1u);
  EXPECT_EQ(root_traces.count(events[1].trace_id), 1u);
}

TEST(MapServiceObservabilityTest, SlowRequestsLeaveAnEvent) {
  MapService::Options opt = SmallTileOptions();
  opt.slow_request_threshold_s = 1e-9;  // Everything is "slow".
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  ASSERT_TRUE(service.GetRegion(service.snapshot()->map.BoundingBox()).ok());
  std::vector<EventLog::Event> events = service.RecentEvents();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].type, EventLog::Type::kSlowRequest);
  EXPECT_NE(events[0].detail.find("map_service.get_region"),
            std::string::npos)
      << events[0].detail;
  EXPECT_NE(events[0].detail.find("threshold"), std::string::npos);
}

TEST(MapServiceObservabilityTest, InjectedPublishFaultIsLogged) {
  FaultInjector faults(7);
  faults.AddPolicy({MapService::kPublishFaultSite, FaultKind::kFailStatus,
                    1.0, StatusCode::kInternal});
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {FirstLandmarkId(service.snapshot()->map), {1, 2, 3}});
  service.StagePatch(patch);
  EXPECT_EQ(service.Publish().code(), StatusCode::kInternal);
  std::vector<EventLog::Event> events = service.RecentEvents();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].type, EventLog::Type::kInjectedFault);
  EXPECT_EQ(events[0].code, StatusCode::kInternal);
  EXPECT_NE(events[0].detail.find("map_service.publish"), std::string::npos);
}

TEST(MapServiceObservabilityTest, EventsOrderDegradeThenRecoverAcrossRestart) {
  ScopedDataDir dir("events_order");
  {
    MapService service(DurableOptions(dir.str()));
    ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
    MapPatch patch;
    ElementId sign = FirstLandmarkId(service.snapshot()->map);
    patch.moved_landmarks.push_back(
        {sign,
         service.snapshot()->map.FindLandmark(sign)->position + Vec3{9, 0, 0}});
    ASSERT_TRUE(service.ApplyPatch(patch).ok());  // Checkpoint v2.
  }
  // Tear the newest checkpoint's manifest so recovery falls back to v1.
  fs::path newest;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir.str()) / "checkpoints")) {
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  fs::path manifest = newest / "manifest.bin";
  fs::resize_file(manifest, fs::file_size(manifest) / 2);

  FaultInjector faults(5);
  MapService::Options opt = DurableOptions(dir.str());
  opt.fault_injector = &faults;
  MapService revived(opt);
  ASSERT_TRUE(revived.Init(HdMap()).ok());
  EXPECT_EQ(revived.Health(), ServiceHealth::kDegraded);

  // Recovery already logged its story; now degrade a read on top.
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  ASSERT_TRUE(
      revived.GetRegion(revived.snapshot()->map.BoundingBox()).ok());

  // Newest first: the degraded read, then the recovery summary, then the
  // checkpoint fallback that preceded it — seq strictly descending.
  std::vector<EventLog::Event> events = revived.RecentEvents();
  ASSERT_GE(events.size(), 3u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events[0].type, EventLog::Type::kQuarantinedTile);
  EXPECT_EQ(events[1].type, EventLog::Type::kRecoverySummary);
  EXPECT_EQ(events[2].type, EventLog::Type::kCheckpointFallback);
  EXPECT_NE(events[1].detail.find("recovered version"), std::string::npos)
      << events[1].detail;
  EXPECT_NE(events[2].detail.find("checkpoint"), std::string::npos);
}

}  // namespace
}  // namespace hdmap
