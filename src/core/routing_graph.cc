#include "core/routing_graph.h"

#include <algorithm>

namespace hdmap {

const std::vector<RoutingGraph::Edge> RoutingGraph::kNoEdges;

RoutingGraph RoutingGraph::Build(const HdMap& map,
                                 double lane_change_penalty) {
  RoutingGraph g;
  for (const auto& [id, ll] : map.lanelets()) {
    double speed = std::max(1.0, map.EffectiveSpeedLimit(id));
    g.max_speed_mps_ = std::max(g.max_speed_mps_, speed);
    double traverse_seconds = ll.Length() / speed;
    std::vector<Edge>& out = g.edges_[id];
    for (ElementId succ : ll.successors) {
      if (map.FindLanelet(succ) == nullptr) continue;
      out.push_back(Edge{succ, traverse_seconds, false});
    }
    auto add_lane_change = [&](ElementId neighbor) {
      if (neighbor == kInvalidId || map.FindLanelet(neighbor) == nullptr) {
        return;
      }
      // A lane change consumes roughly the same longitudinal distance,
      // plus a penalty for the maneuver.
      out.push_back(
          Edge{neighbor, traverse_seconds + lane_change_penalty, true});
    };
    add_lane_change(ll.left_neighbor);
    add_lane_change(ll.right_neighbor);
    g.num_edges_ += out.size();
    g.end_positions_[id] = ll.centerline.back();
  }
  return g;
}

const std::vector<RoutingGraph::Edge>& RoutingGraph::OutEdges(
    ElementId id) const {
  auto it = edges_.find(id);
  return it == edges_.end() ? kNoEdges : it->second;
}

double RoutingGraph::HeuristicSeconds(ElementId from, ElementId to) const {
  auto a = end_positions_.find(from);
  auto b = end_positions_.find(to);
  if (a == end_positions_.end() || b == end_positions_.end()) return 0.0;
  return a->second.DistanceTo(b->second) / max_speed_mps_;
}

}  // namespace hdmap
