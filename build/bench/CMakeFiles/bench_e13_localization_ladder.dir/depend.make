# Empty dependencies file for bench_e13_localization_ladder.
# This may be replaced when dependencies are built.
