file(REMOVE_RECURSE
  "CMakeFiles/raster_diff_test.dir/raster_diff_test.cc.o"
  "CMakeFiles/raster_diff_test.dir/raster_diff_test.cc.o.d"
  "raster_diff_test"
  "raster_diff_test.pdb"
  "raster_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
