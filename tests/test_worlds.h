#ifndef HDMAP_TESTS_TEST_WORLDS_H_
#define HDMAP_TESTS_TEST_WORLDS_H_

#include <algorithm>

#include "common/rng.h"
#include "core/hd_map.h"
#include "sim/road_network_generator.h"

namespace hdmap {

/// A 1 km straight two-lane road along +x with markings, edges and
/// periodic signs: the shared fixture for localization/creation tests.
inline HdMap StraightRoad(double length = 1000.0, double sign_spacing = 60.0) {
  HdMap map;
  ElementId next = 1;
  auto line = [&](double y, LineType type, double refl) {
    LineFeature lf;
    lf.id = next++;
    lf.type = type;
    lf.reflectivity = refl;
    std::vector<Vec2> pts;
    for (double x = 0.0; x <= length; x += 10.0) pts.push_back({x, y});
    lf.geometry = LineString(std::move(pts));
    ElementId id = lf.id;
    (void)map.AddLineFeature(std::move(lf));
    return id;
  };
  ElementId left_edge = line(3.5, LineType::kRoadEdge, 0.3);
  ElementId center = line(0.0, LineType::kSolidLaneMarking, 0.85);
  ElementId right_edge = line(-3.5, LineType::kRoadEdge, 0.3);

  auto lane = [&](double y, ElementId lb, ElementId rb, bool reversed) {
    Lanelet ll;
    ll.id = next++;
    std::vector<Vec2> pts;
    for (double x = 0.0; x <= length; x += 10.0) pts.push_back({x, y});
    if (reversed) std::reverse(pts.begin(), pts.end());
    ll.centerline = LineString(std::move(pts));
    ll.left_boundary_id = lb;
    ll.right_boundary_id = rb;
    ElementId id = ll.id;
    (void)map.AddLanelet(std::move(ll));
    return id;
  };
  ElementId fwd = lane(-1.75, center, right_edge, false);
  ElementId bwd = lane(1.75, center, left_edge, true);
  (void)fwd;
  (void)bwd;

  // Periodic cross stop-lines (side-street mouths): these make the
  // longitudinal direction observable to marking-based localizers.
  for (double x = 100.0; x < length; x += 100.0) {
    LineFeature stop;
    stop.id = next++;
    stop.type = LineType::kStopLine;
    stop.reflectivity = 0.9;
    stop.geometry = LineString({{x, -3.3}, {x, 3.3}});
    (void)map.AddLineFeature(std::move(stop));
  }

  for (double x = sign_spacing / 2; x < length; x += sign_spacing) {
    Landmark sign;
    sign.id = next++;
    sign.type = LandmarkType::kTrafficSign;
    sign.subtype = "speed_limit_50";
    double side = (static_cast<int>(x / sign_spacing) % 2 == 0) ? 1.0 : -1.0;
    sign.position = {x, side * 5.0, 2.2};
    sign.reflectivity = 0.9;
    (void)map.AddLandmark(std::move(sign));
  }
  return map;
}

/// A small deterministic town.
inline HdMap SmallTownWorld(uint64_t seed = 17, int rows = 3, int cols = 3) {
  Rng rng(seed);
  TownOptions opt;
  opt.grid_rows = rows;
  opt.grid_cols = cols;
  auto town = GenerateTown(opt, rng);
  return town.ok() ? std::move(town).value() : HdMap();
}

}  // namespace hdmap

#endif  // HDMAP_TESTS_TEST_WORLDS_H_
