#ifndef HDMAP_ATV_OCCUPANCY_GRID_H_
#define HDMAP_ATV_OCCUPANCY_GRID_H_

#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Log-odds occupancy grid for indoor ATV mapping (the improved grid map
/// of Tas et al. [10, 11] underlying visual-SLAM-based sign updates).
class OccupancyGrid {
 public:
  OccupancyGrid() = default;
  OccupancyGrid(const Aabb& extent, double resolution);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }

  /// Occupancy probability of the cell containing p (0.5 = unknown).
  double OccupancyAt(const Vec2& p) const;

  /// Integrates one range ray: cells along the beam get a free update,
  /// the endpoint cell (if a hit) an occupied update.
  void IntegrateRay(const Vec2& origin, const Vec2& endpoint, bool hit);

  /// Cells with occupancy above the threshold.
  size_t NumOccupied(double threshold = 0.65) const;

  bool InBounds(int cx, int cy) const {
    return cx >= 0 && cx < width_ && cy >= 0 && cy < height_;
  }
  void WorldToCell(const Vec2& p, int* cx, int* cy) const {
    *cx = static_cast<int>((p.x - origin_.x) / resolution_);
    *cy = static_cast<int>((p.y - origin_.y) / resolution_);
  }

 private:
  double LogOddsAt(int cx, int cy) const;
  void AddLogOdds(int cx, int cy, double delta);

  Vec2 origin_;
  double resolution_ = 0.1;
  int width_ = 0;
  int height_ = 0;
  std::vector<float> log_odds_;
};

}  // namespace hdmap

#endif  // HDMAP_ATV_OCCUPANCY_GRID_H_
