#ifndef HDMAP_CORE_BUNDLE_GRAPH_H_
#define HDMAP_CORE_BUNDLE_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/hd_map.h"

namespace hdmap {

/// The HiDAM [21] compatibility view: the HD map reduced to its
/// node-edge skeleton, where each edge is a multi-directional lane
/// bundle between two nodes. Legacy (road-segment-level) applications —
/// classic navigation, traffic assignment — run on this graph while the
/// lane-level detail stays available underneath.
class BundleGraph {
 public:
  struct Edge {
    ElementId bundle_id = kInvalidId;
    ElementId to_node = kInvalidId;
    double length = 0.0;          ///< Representative segment length, m.
    int forward_lanes = 0;        ///< Lanes drivable toward `to_node`.
    int backward_lanes = 0;
  };

  /// Builds the node-edge view from the map's bundle/node layer.
  /// kFailedPrecondition when the map carries no bundles.
  static Result<BundleGraph> Build(const HdMap& map);

  size_t NumNodes() const { return edges_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const std::vector<Edge>& OutEdges(ElementId node_id) const;

  /// Road-segment-level shortest path (by length) between two nodes —
  /// the classic navigation query HiDAM keeps compatible. Returns node
  /// ids including both endpoints; kNotFound when disconnected.
  Result<std::vector<ElementId>> ShortestNodePath(ElementId from,
                                                  ElementId to) const;

 private:
  std::unordered_map<ElementId, std::vector<Edge>> edges_;
  size_t num_edges_ = 0;
  static const std::vector<Edge> kNoEdges;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_BUNDLE_GRAPH_H_
