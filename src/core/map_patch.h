#ifndef HDMAP_CORE_MAP_PATCH_H_
#define HDMAP_CORE_MAP_PATCH_H_

#include <vector>

#include "common/status.h"
#include "core/hd_map.h"

namespace hdmap {

/// A changeset produced by maintenance pipelines and applied to an HdMap.
/// Covers the element classes that change at high rates in practice
/// (landmarks and line features): SLAMCU [41], Pannen [44], Tas [11] all
/// report sign/marking-level updates.
struct MapPatch {
  std::vector<Landmark> added_landmarks;
  std::vector<ElementId> removed_landmarks;
  struct Move {
    ElementId id = kInvalidId;
    Vec3 new_position;
  };
  std::vector<Move> moved_landmarks;
  std::vector<LineFeature> updated_line_features;  // Replace-by-id.

  bool IsEmpty() const {
    return added_landmarks.empty() && removed_landmarks.empty() &&
           moved_landmarks.empty() && updated_line_features.empty();
  }
  size_t NumChanges() const {
    return added_landmarks.size() + removed_landmarks.size() +
           moved_landmarks.size() + updated_line_features.size();
  }
};

/// Applies a patch in-place. Add of an existing id, removal/move of a
/// missing id, and update of a missing line feature fail; earlier entries
/// stay applied (caller controls transactionality by validating first).
Status ApplyPatch(const MapPatch& patch, HdMap* map);

/// Landmark-level diff: the patch that transforms `before` into `after`.
/// Positions differing by more than `move_tolerance` meters become moves.
MapPatch DiffLandmarks(const HdMap& before, const HdMap& after,
                       double move_tolerance = 0.05);

}  // namespace hdmap

#endif  // HDMAP_CORE_MAP_PATCH_H_
