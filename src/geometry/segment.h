#ifndef HDMAP_GEOMETRY_SEGMENT_H_
#define HDMAP_GEOMETRY_SEGMENT_H_

#include <algorithm>
#include <optional>

#include "geometry/vec2.h"

namespace hdmap {

/// Closed line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Segment() = default;
  constexpr Segment(Vec2 a_in, Vec2 b_in) : a(a_in), b(b_in) {}

  double Length() const { return a.DistanceTo(b); }
  Vec2 Direction() const { return (b - a).Normalized(); }

  /// Parameter t in [0,1] of the closest point on the segment to p.
  double ClosestParam(const Vec2& p) const {
    Vec2 d = b - a;
    double len2 = d.SquaredNorm();
    if (len2 <= 0.0) return 0.0;
    return std::clamp((p - a).Dot(d) / len2, 0.0, 1.0);
  }

  Vec2 ClosestPoint(const Vec2& p) const {
    return Lerp(a, b, ClosestParam(p));
  }

  double DistanceTo(const Vec2& p) const {
    return p.DistanceTo(ClosestPoint(p));
  }

  /// Intersection point of two segments if they properly intersect (or
  /// touch); nullopt for parallel/disjoint segments.
  std::optional<Vec2> Intersect(const Segment& o) const {
    Vec2 r = b - a;
    Vec2 s = o.b - o.a;
    double denom = r.Cross(s);
    if (denom == 0.0) return std::nullopt;  // Parallel or collinear.
    Vec2 qp = o.a - a;
    double t = qp.Cross(s) / denom;
    double u = qp.Cross(r) / denom;
    if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
    return a + r * t;
  }
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_SEGMENT_H_
