#ifndef HDMAP_CORE_PINNED_BYTES_H_
#define HDMAP_CORE_PINNED_BYTES_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace hdmap {

/// An immutable, reference-counted byte buffer: a span plus the shared
/// ownership that keeps it alive. The storage behind the span is either
/// an owned heap string or an externally-owned region (e.g. an mmap'd
/// checkpoint file) pinned through `owner`.
///
/// This is the lifetime contract of the zero-copy read path: a
/// PinnedBytes handed out by TileStore or SnapshotStore stays valid no
/// matter what happens to the source afterwards — the tile's bytes may
/// be replaced (PutRawTile), the snapshot swapped, or the checkpoint
/// directory retention-deleted (a POSIX unlink does not invalidate live
/// mappings). Holders therefore never copy and never synchronize; they
/// just keep the PinnedBytes (and with it the pin) for as long as they
/// read.
class PinnedBytes {
 public:
  PinnedBytes() = default;

  /// Takes ownership of `bytes` (one move, no copy).
  static PinnedBytes FromString(std::string bytes) {
    auto owned = std::make_shared<const std::string>(std::move(bytes));
    const uint8_t* data = reinterpret_cast<const uint8_t*>(owned->data());
    size_t size = owned->size();
    return PinnedBytes(std::move(owned), data, size);
  }

  /// Copies `bytes` into a new owned buffer.
  static PinnedBytes CopyOf(std::string_view bytes) {
    return FromString(std::string(bytes));
  }

  /// Wraps an externally-owned region: `owner` is whatever keeps
  /// [data, data + size) alive (an MmapFile, a containing buffer, ...).
  static PinnedBytes FromOwner(std::shared_ptr<const void> owner,
                              const uint8_t* data, size_t size) {
    return PinnedBytes(std::move(owner), data, size);
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<const uint8_t> span() const { return {data_, size_}; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// The ownership token (shared with every copy of this PinnedBytes).
  const std::shared_ptr<const void>& owner() const { return owner_; }

  /// Byte-wise equality (not identity).
  friend bool operator==(const PinnedBytes& a, const PinnedBytes& b) {
    return a.view() == b.view();
  }

 private:
  PinnedBytes(std::shared_ptr<const void> owner, const uint8_t* data,
              size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_PINNED_BYTES_H_
