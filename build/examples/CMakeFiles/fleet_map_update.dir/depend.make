# Empty dependencies file for fleet_map_update.
# This may be replaced when dependencies are built.
