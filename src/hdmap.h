#ifndef HDMAP_HDMAP_H_
#define HDMAP_HDMAP_H_

/// Umbrella header: the full public API of the hdmap ecosystem library.
/// Fine-grained headers remain available for build-time-sensitive users.

// Infrastructure.
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/units.h"

// Geometry.
#include "geometry/aabb.h"
#include "geometry/grid_index.h"
#include "geometry/kd_tree.h"
#include "geometry/line_fitting.h"
#include "geometry/line_string.h"
#include "geometry/polygon.h"
#include "geometry/pose2.h"
#include "geometry/pose3.h"
#include "geometry/r_tree.h"
#include "geometry/segment.h"
#include "geometry/vec2.h"
#include "geometry/vec3.h"

// The HD map (II-A: modeling and design).
#include "core/bundle_graph.h"
#include "core/elements.h"
#include "core/feature_layer.h"
#include "core/hd_map.h"
#include "core/map_patch.h"
#include "core/raster_filter.h"
#include "core/raster_layer.h"
#include "core/routing_graph.h"
#include "core/serialization.h"
#include "core/tile_store.h"

// Simulation substrate.
#include "sim/change_injector.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"
#include "sim/vehicle.h"

// Map creation (II-B.1).
#include "creation/aerial_fusion.h"
#include "creation/crowd_mapper.h"
#include "creation/lane_learner.h"
#include "creation/lidar_pipeline.h"
#include "creation/map_generator.h"
#include "creation/online_map_builder.h"

// Map maintenance and update (II-B.2).
#include "maintenance/change_detector.h"
#include "maintenance/crowd_sensing.h"
#include "maintenance/incremental_fusion.h"
#include "maintenance/raster_diff.h"
#include "maintenance/slamcu.h"

// Localization (III-1).
#include "localization/cooperative_localization.h"
#include "localization/ekf_localizer.h"
#include "localization/lane_matcher.h"
#include "localization/map_capability.h"
#include "localization/marking_localizer.h"
#include "localization/particle_filter.h"
#include "localization/raster_localizer.h"
#include "localization/relocalization.h"
#include "localization/triangulation.h"

// Pose estimation (III-2).
#include "pose/factor_graph.h"
#include "pose/pose_estimator.h"

// Path planning (III-3).
#include "planning/frenet_planner.h"
#include "planning/pcc.h"
#include "planning/pure_pursuit.h"
#include "planning/route_planner.h"
#include "planning/speed_profile.h"

// Serving (versioned snapshots + observability).
#include "service/map_service.h"

// Perception (III-4).
#include "perception/cooperative.h"
#include "perception/object_detector.h"
#include "perception/traffic_light_recognition.h"

// ATVs (III-5).
#include "atv/factory_world.h"
#include "atv/occupancy_grid.h"
#include "atv/scan_matcher.h"
#include "atv/sign_update.h"

#endif  // HDMAP_HDMAP_H_
