// E16: versioned snapshot serving under a concurrent reader/writer load.
//
// N reader threads hammer MapService::GetRegion while one writer thread
// publishes patches at a fixed rate. Each patch moves a set of version
// markers (landmarks whose z coordinate encodes the snapshot version), so
// a reader can detect a torn read — a region stitched from tiles of two
// different versions — by checking that every marker in the loaded region
// carries the same z. The run fails (nonzero exit) on any torn read or
// version rollback; latency percentiles and service metrics are reported
// from the MetricsRegistry that instruments the service.
//
// With --fault-pct=K a deterministic FaultInjector bit-flips serialized
// tiles at load time (site "tile_store.load"); the service keeps serving
// in degraded mode, and the run additionally reports the degraded-region
// rate and final Health() alongside the latency percentiles. Injection is
// content-hash deterministic, so K% is the fraction of distinct tile
// blobs that corrupt (not of individual loads): a firing tile fires on
// every load until a publish replaces its bytes.
//
// Usage: bench_e16_serving [--smoke] [--readers=N] [--seconds=S]
//                          [--rate-hz=R] [--fault-pct=K]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "service/map_service.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

constexpr ElementId kFirstMarkerId = 900001;
constexpr int kNumMarkers = 6;

/// Markers straddle several 100 m tiles so a region load crosses tile
/// boundaries — the only way a torn stitch could manifest.
Vec2 MarkerXy(int i) { return {40.0 + 55.0 * i, 6.0}; }

struct ReaderResult {
  std::vector<double> latencies_s;
  uint64_t reads = 0;
  uint64_t degraded = 0;
  uint64_t torn = 0;
  uint64_t rollbacks = 0;
  uint64_t errors = 0;
};

ReaderResult ReaderLoop(const MapService& service, const Aabb& box,
                        const std::atomic<bool>& stop) {
  ReaderResult out;
  uint64_t last_version = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    bench::Timer t;
    RegionReport report;
    auto region = service.GetRegion(box, &report);
    out.latencies_s.push_back(t.Seconds());
    ++out.reads;
    if (!region.ok()) {
      ++out.errors;
      continue;
    }
    if (!report.corrupt_tiles.empty()) {
      // Degraded read: markers may live in the quarantined tiles, so the
      // torn-read check is meaningless for this response.
      ++out.degraded;
      continue;
    }
    const Landmark* first = region->FindLandmark(kFirstMarkerId);
    if (first == nullptr) {
      ++out.errors;
      continue;
    }
    uint64_t version = static_cast<uint64_t>(first->position.z);
    bool torn = false;
    for (int i = 1; i < kNumMarkers; ++i) {
      const Landmark* lm = region->FindLandmark(kFirstMarkerId + i);
      if (lm == nullptr ||
          static_cast<uint64_t>(lm->position.z) != version) {
        torn = true;
      }
    }
    if (torn) ++out.torn;
    if (version < last_version) ++out.rollbacks;
    last_version = version;
  }
  return out;
}

}  // namespace
}  // namespace hdmap

int main(int argc, char** argv) {
  using namespace hdmap;

  size_t readers = 4;
  double seconds = 3.0;
  double rate_hz = 100.0;
  double fault_pct = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      readers = 2;
      seconds = 0.4;
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rate-hz=", 10) == 0) {
      rate_hz = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--fault-pct=", 12) == 0) {
      fault_pct = std::atof(argv[i] + 12);
    }
  }
  const bool fault_mode = fault_pct > 0.0;

  bench::PrintHeader(
      "E16", "snapshot serving under concurrent patch publishing",
      "fleet map services serve consistent versions while updates land "
      "continuously (II-B.2 / III serving workloads)");

  MetricsRegistry registry;
  FaultInjector faults(20260807);
  if (fault_mode) {
    faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip,
                      fault_pct / 100.0});
  }
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  opt.metrics = &registry;
  if (fault_mode) opt.fault_injector = &faults;
  MapService service(opt);

  HdMap world = StraightRoad(400.0);
  for (int i = 0; i < kNumMarkers; ++i) {
    Landmark marker;
    marker.id = kFirstMarkerId + i;
    marker.type = LandmarkType::kTrafficSign;
    marker.subtype = "version_marker";
    marker.position = {MarkerXy(i).x, MarkerXy(i).y, 1.0};  // z = version.
    if (!world.AddLandmark(marker).ok()) return 1;
  }
  if (!service.Init(std::move(world)).ok()) {
    std::fprintf(stderr, "Init failed\n");
    return 1;
  }

  // The query box spans every marker (and several tile boundaries).
  Aabb box{{0.0, -10.0}, {400.0, 12.0}};

  std::atomic<bool> stop{false};
  std::vector<ReaderResult> results(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] { results[r] = ReaderLoop(service, box, stop); });
  }

  // Writer: publish version v with every marker's z set to v, at rate_hz.
  uint64_t publishes = 0;
  uint64_t publish_failures = 0;
  bench::Timer run;
  auto period =
      std::chrono::duration<double>(rate_hz > 0.0 ? 1.0 / rate_hz : 0.01);
  while (run.Seconds() < seconds) {
    uint64_t next_version = service.version() + 1;
    MapPatch patch;
    for (int i = 0; i < kNumMarkers; ++i) {
      patch.moved_landmarks.push_back(
          {kFirstMarkerId + i,
           {MarkerXy(i).x, MarkerXy(i).y, static_cast<double>(next_version)}});
    }
    if (service.ApplyPatch(std::move(patch)).ok()) {
      ++publishes;
    } else {
      ++publish_failures;
      service.DiscardStagedPatches();
    }
    std::this_thread::sleep_for(period);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  std::vector<double> latencies;
  uint64_t reads = 0, degraded = 0, torn = 0, rollbacks = 0, errors = 0;
  for (const ReaderResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_s.begin(),
                     r.latencies_s.end());
    reads += r.reads;
    degraded += r.degraded;
    torn += r.torn;
    rollbacks += r.rollbacks;
    errors += r.errors;
  }

  std::printf("\nload: %zu readers x GetRegion, 1 writer @ %.0f Hz, %.1f s",
              readers, rate_hz, seconds);
  if (fault_mode) {
    std::printf(", %.1f%% tile blobs corrupted at load", fault_pct);
  }
  std::printf("\n");
  bench::PrintRow("reads served", "(consistent)",
                  bench::Fmt("%.0f", static_cast<double>(reads)));
  bench::PrintRow("versions published", "fixed rate",
                  bench::Fmt("%.0f", static_cast<double>(publishes)));
  bench::PrintRow("torn reads", "0",
                  bench::Fmt("%.0f", static_cast<double>(torn)));
  bench::PrintRow("version rollbacks", "0",
                  bench::Fmt("%.0f", static_cast<double>(rollbacks)));
  bench::PrintRow("read errors", "0",
                  bench::Fmt("%.0f", static_cast<double>(errors)));
  if (fault_mode) {
    double rate = reads > 0 ? 100.0 * static_cast<double>(degraded) /
                                  static_cast<double>(reads)
                            : 0.0;
    bench::PrintRow("degraded regions", "served, not failed",
                    bench::Fmt("%.0f", static_cast<double>(degraded)));
    bench::PrintRow("degraded-region rate", "tracks --fault-pct",
                    bench::Fmt("%.1f %%", rate));
    bench::PrintRow("health", "DEGRADED under faults",
                    service.Health() == ServiceHealth::kDegraded
                        ? "DEGRADED"
                        : "SERVING");
  }
  bench::PrintRow("GetRegion p50", "low ms",
                  bench::Fmt("%.3f ms", Percentile(latencies, 50) * 1e3));
  bench::PrintRow("GetRegion p99", "low ms",
                  bench::Fmt("%.3f ms", Percentile(latencies, 99) * 1e3));

  std::printf("\nmetrics registry:\n%s", registry.Render().c_str());

  // Consistency must hold with or without faults; under injection the
  // degraded path must additionally have absorbed the corruption (no
  // reader-visible errors — the whole point of partial-mode serving).
  bool ok = torn == 0 && rollbacks == 0 && errors == 0 &&
            publish_failures == 0 && publishes > 0 && reads > 0;
  std::printf("\nE16 %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
