#ifndef HDMAP_COMMON_STATUS_H_
#define HDMAP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hdmap {

/// Canonical error space for the library. The library never throws across
/// its public API; every fallible operation returns a Status (or a
/// Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kDataLoss = 8,
};

/// Returns the canonical spelling of a status code, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status: a code plus a human-readable message. An OK status
/// carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace hdmap

/// Propagates a non-OK Status out of the enclosing function.
#define HDMAP_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::hdmap::Status hdmap_status_macro_ = (expr);   \
    if (!hdmap_status_macro_.ok()) {                \
      return hdmap_status_macro_;                   \
    }                                               \
  } while (false)

#endif  // HDMAP_COMMON_STATUS_H_
