#include <gtest/gtest.h>

#include "core/raster_filter.h"
#include "creation/online_map_builder.h"
#include "sim/sensors.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

TEST(OnlineMapBuilderTest, BuildsLocalMapFromDrive) {
  HdMap world = StraightRoad(400.0, 60.0);
  Rng rng(111);
  MarkingScanner scanner({});
  LandmarkDetector detector({});
  OnlineMapBuilder builder({});
  for (double x = 10.0; x < 390.0; x += 4.0) {
    Pose2 pose(x, -1.75, 0.0);
    builder.IntegrateFrame(pose, scanner.Scan(world, pose, rng),
                           detector.Detect(world, pose, rng));
  }
  EXPECT_GT(builder.num_frames(), 50u);
  SemanticRaster built = builder.Build();
  EXPECT_GT(built.NumOccupied(), 200u);

  // Marking cells of the built map trace the true markings.
  int marking_cells = 0, near_truth = 0;
  for (int cy = 0; cy < built.height(); ++cy) {
    for (int cx = 0; cx < built.width(); ++cx) {
      if ((built.At(cx, cy) & kRasterLaneMarking) == 0) continue;
      ++marking_cells;
      Vec2 p = built.CellCenter(cx, cy);
      double best = 10.0;
      for (ElementId id : world.LineFeaturesInBox(Aabb::FromPoint(p, 3.0))) {
        const LineFeature* lf = world.FindLineFeature(id);
        if (lf == nullptr || lf->type == LineType::kVirtual) continue;
        best = std::min(best, lf->geometry.DistanceTo(p));
      }
      if (best < 0.8) ++near_truth;
    }
  }
  ASSERT_GT(marking_cells, 100);
  EXPECT_GT(static_cast<double>(near_truth) / marking_cells, 0.85);

  // IoU against the ground-truth raster over the same region.
  SemanticRaster truth = RasterizeMapInExtent(
      world, built.resolution(),
      Aabb(built.origin(),
           built.origin() + Vec2{built.width() * built.resolution(),
                                 built.height() * built.resolution()}));
  double iou = OnlineMapBuilder::Iou(built, truth);
  EXPECT_GT(iou, 0.15);  // Sensor map is sparse vs the full GT raster.
}

TEST(OnlineMapBuilderTest, EvidenceThresholdSuppressesOneOffNoise) {
  OnlineMapBuilder::Options opt;
  opt.min_evidence = 3;
  OnlineMapBuilder builder(opt);
  MarkingPoint noise;
  noise.position_vehicle = {5.0, 0.0};
  noise.intensity = 0.9;
  builder.IntegrateFrame(Pose2(0, 0, 0), {noise}, {});
  EXPECT_EQ(builder.Build().NumOccupied(), 0u);
  // Two more consistent observations cross the threshold.
  builder.IntegrateFrame(Pose2(0, 0, 0), {noise}, {});
  builder.IntegrateFrame(Pose2(0, 0, 0), {noise}, {});
  EXPECT_EQ(builder.Build().NumOccupied(), 1u);
}

TEST(OnlineMapBuilderTest, EmptyBuilderYieldsEmptyRaster) {
  OnlineMapBuilder builder({});
  EXPECT_EQ(builder.Build().NumOccupied(), 0u);
}

TEST(WmofTest, RemovesSaltNoiseKeepsLines) {
  SemanticRaster raster(Aabb({0, 0}, {20, 20}), 0.5);
  // A solid horizontal line at y = 10.
  raster.DrawLineString(LineString({{1, 10}, {19, 10}}),
                        kRasterLaneMarking);
  // Salt noise: isolated single cells.
  raster.Set(5, 5, kRasterSign);
  raster.Set(30, 8, kRasterSign);
  raster.Set(12, 33, kRasterLight);

  SemanticRaster filtered = WeightedModeFilter(raster);
  // The noise cells vanish (weight below threshold)...
  EXPECT_EQ(filtered.At(5, 5), 0);
  EXPECT_EQ(filtered.At(30, 8), 0);
  EXPECT_EQ(filtered.At(12, 33), 0);
  // ...but the line survives (check its middle).
  int lcx = 0, lcy = 0;
  filtered.WorldToCell({10.0, 10.0}, &lcx, &lcy);
  EXPECT_NE(filtered.At(lcx, lcy) & kRasterLaneMarking, 0);
}

TEST(WmofTest, UpsampleProducesFinerGridSameContent) {
  SemanticRaster coarse(Aabb({0, 0}, {10, 10}), 1.0);
  coarse.DrawLineString(LineString({{1, 5}, {9, 5}}), kRasterLaneMarking);
  SemanticRaster fine = UpsampleModeFilter(coarse, 4);
  EXPECT_EQ(fine.width(), coarse.width() * 4);
  EXPECT_NEAR(fine.resolution(), 0.25, 1e-9);
  // The upsampled marking still covers the line location.
  EXPECT_NE(fine.Sample({5.0, 5.2}) & kRasterLaneMarking, 0);
  // Far-away cells stay empty.
  EXPECT_EQ(fine.Sample({5.0, 9.0}), 0);
}

TEST(WmofTest, FactorOneIsPlainFilter) {
  SemanticRaster raster(Aabb({0, 0}, {5, 5}), 0.5);
  raster.DrawLineString(LineString({{0.5, 2.5}, {4.5, 2.5}}),
                        kRasterLaneMarking);
  SemanticRaster a = WeightedModeFilter(raster);
  SemanticRaster b = UpsampleModeFilter(raster, 1);
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.NumOccupied(), b.NumOccupied());
}

}  // namespace
}  // namespace hdmap
