#include "storage/patch_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/trace.h"
#include "core/binary_io.h"
#include "core/serialization.h"
#include "core/wire_frame.h"

namespace hdmap {

namespace {

// "WALR" little-endian.
constexpr uint32_t kRecordMagic = 0x524c4157u;
// magic + payload_len + crc + version_hint.
constexpr size_t kRecordHeaderSize = 20;

}  // namespace

PatchWal::PatchWal(Options options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    appends_ = options_.metrics->GetCounter("wal.appends");
    append_failures_ = options_.metrics->GetCounter("wal.append_failures");
    replay_skipped_ = options_.metrics->GetCounter("wal.replay_skipped");
    resets_ = options_.metrics->GetCounter("wal.resets");
    batches_ = options_.metrics->GetCounter("wal.fsync_batches");
    bytes_gauge_ = options_.metrics->GetGauge("wal.size_bytes");
    lat_append_ = options_.metrics->GetLatency("wal.append");
  }
}

PatchWal::~PatchWal() {
  if (fd_ >= 0) ::close(fd_);
}

Status PatchWal::EnsureOpen() {
  if (fd_ >= 0) return Status::Ok();
  if (options_.path.empty()) {
    return Status::FailedPrecondition("PatchWal has no path");
  }
  std::error_code ec;
  std::filesystem::path parent =
      std::filesystem::path(options_.path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::Internal("open " + options_.path + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

std::string PatchWal::EncodeRecord(const MapPatch& patch,
                                   uint64_t version_hint) const {
  std::string payload = SerializePatch(patch);  // Already framed.
  // The CRC covers version_hint || payload, split across buffers.
  BufferWriter hint_bytes;
  hint_bytes.WriteU64(version_hint);
  uint32_t crc = Crc32(hint_bytes.buffer());
  crc = Crc32(payload, crc);
  BufferWriter record;
  record.WriteU32(kRecordMagic);
  record.WriteU32(static_cast<uint32_t>(payload.size()));
  record.WriteU32(crc);
  record.WriteU64(version_hint);
  std::string bytes = record.Release();
  bytes.append(payload);

  std::string corrupted;
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->MaybeCorrupt(kAppendFaultSite, bytes,
                                            &corrupted)) {
    // A corrupted record still acks: it models bytes mangled on their
    // way to disk, which replay must detect and skip.
    bytes = std::move(corrupted);
  }
  return bytes;
}

Status PatchWal::WriteBatch(const std::string& batch) {
  // Batch boundary to roll back to: a failed write (ENOSPC/EIO midway)
  // or fsync must not leave partial records for later successful
  // appends to land after — replay would lose its alignment at the torn
  // bytes and discard every record behind them.
  off_t batch_start = ::lseek(fd_, 0, SEEK_END);
  auto fail = [&](const char* op) {
    Status err = Status::Internal(std::string(op) + " " + options_.path +
                                  ": " + std::strerror(errno));
    if (batch_start >= 0) (void)::ftruncate(fd_, batch_start);
    return err;
  };
  size_t off = 0;
  while (off < batch.size()) {
    ssize_t n = ::write(fd_, batch.data() + off, batch.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write");
    }
    off += static_cast<size_t>(n);
  }
  if (options_.fsync == FsyncMode::kAlways && ::fsync(fd_) != 0) {
    return fail("fsync");
  }
  return Status::Ok();
}

Status PatchWal::Append(const MapPatch& patch, uint64_t version_hint) {
  TraceSpan span("wal.append");
  ScopedTimer timer(lat_append_);
  Status result = [&]() -> Status {
    FaultInjector* faults = options_.fault_injector;
    if (faults != nullptr) {
      HDMAP_RETURN_IF_ERROR(faults->MaybeFail(kAppendFaultSite));
    }
    // Encoding (serialize + CRC) happens outside the commit lock: only
    // the memcpy onto the pending batch is serialized.
    std::string bytes = EncodeRecord(patch, version_hint);

    std::unique_lock<std::mutex> lock(commit_mu_);
    HDMAP_RETURN_IF_ERROR(EnsureOpen());  // Cheap after the first call.
    uint64_t ticket = next_ticket_++;
    pending_.append(bytes);
    // Group commit: whoever finds no flush running becomes the leader for
    // everything pending (their own record included); everyone else waits
    // for a leader to push completed_ticket_ past their ticket. One
    // write+fsync covers the whole batch.
    while (completed_ticket_ < ticket) {
      if (!flush_in_progress_) {
        flush_in_progress_ = true;
        std::string batch = std::move(pending_);
        pending_.clear();
        uint64_t batch_begin = taken_ticket_ + 1;
        uint64_t batch_end = next_ticket_ - 1;
        taken_ticket_ = batch_end;
        lock.unlock();
        Status flushed = WriteBatch(batch);
        lock.lock();
        completed_ticket_ = batch_end;
        if (!flushed.ok()) {
          // The whole batch was rolled back to its start boundary; every
          // record in it must fail its appender's ack.
          for (uint64_t t = batch_begin; t <= batch_end; ++t) {
            failed_.emplace(t, flushed);
          }
        } else {
          ++fsync_batches_;
          if (batches_ != nullptr) batches_->Increment();
        }
        flush_in_progress_ = false;
        commit_cv_.notify_all();
      } else {
        commit_cv_.wait(lock);
      }
    }
    auto it = failed_.find(ticket);
    if (it != failed_.end()) {
      Status err = it->second;
      failed_.erase(it);
      return err;
    }
    return Status::Ok();
  }();
  if (!result.ok()) {
    span.SetStatus(result.code());
    if (append_failures_ != nullptr) append_failures_->Increment();
    return result;
  }
  if (appends_ != nullptr) appends_->Increment();
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<double>(SizeBytes()));
  }
  return Status::Ok();
}

uint64_t PatchWal::FsyncBatches() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return fsync_batches_;
}

Result<PatchWal::ReplayResult> PatchWal::Replay() const {
  TraceSpan span("wal.replay");
  ReplayResult out;
  auto file = ReadFileRaw(options_.path);
  if (!file.ok()) {
    if (file.status().code() == StatusCode::kNotFound) return out;
    span.SetStatus(file.status().code());
    return file.status();
  }
  std::string buffer = std::move(file).value();
  if (options_.fault_injector != nullptr) {
    std::string corrupted;
    if (options_.fault_injector->MaybeCorrupt(kReplayFaultSite, buffer,
                                              &corrupted)) {
      buffer = std::move(corrupted);
    }
  }
  out.bytes_scanned = buffer.size();
  std::string_view data = buffer;
  size_t pos = 0;
  size_t skipped = 0;
  while (data.size() - pos >= kRecordHeaderSize) {
    BufferReader header(data.substr(pos, kRecordHeaderSize));
    uint32_t magic = header.ReadU32();
    uint32_t payload_len = header.ReadU32();
    uint32_t crc = header.ReadU32();
    uint64_t version_hint = header.ReadU64();
    if (magic != kRecordMagic) {
      // Unrecognizable bytes: a scribbled header gives no trustworthy
      // length to resync with, so the rest of the log is one torn tail.
      ++skipped;
      break;
    }
    if (payload_len > data.size() - pos - kRecordHeaderSize) {
      ++skipped;  // Torn tail: the append stopped mid-record.
      break;
    }
    // crc covers version_hint (8 bytes at header offset 12) + payload.
    std::string_view covered =
        data.substr(pos + 12, 8 + static_cast<size_t>(payload_len));
    if (Crc32(covered) != crc) {
      // Damaged but with a usable length: skip just this record.
      ++skipped;
      pos += kRecordHeaderSize + payload_len;
      continue;
    }
    std::string_view payload =
        data.substr(pos + kRecordHeaderSize, payload_len);
    auto patch = DeserializePatch(payload);
    if (!patch.ok()) {
      ++skipped;
      pos += kRecordHeaderSize + payload_len;
      continue;
    }
    out.records.push_back(
        ReplayedRecord{std::move(patch).value(), version_hint});
    pos += kRecordHeaderSize + payload_len;
  }
  if (pos < data.size() && data.size() - pos < kRecordHeaderSize) {
    ++skipped;  // Trailing fragment shorter than a header.
  }
  out.skipped_records = skipped;
  if (skipped > 0) span.SetStatus(StatusCode::kDataLoss);
  if (replay_skipped_ != nullptr) replay_skipped_->Increment(skipped);
  return out;
}

Status PatchWal::Rewrite(const std::vector<MapPatch>& patches,
                         uint64_t version_hint) {
  if (options_.path.empty()) {
    return Status::FailedPrecondition("PatchWal has no path");
  }
  FaultInjector* faults = options_.fault_injector;
  if (faults != nullptr) {
    HDMAP_RETURN_IF_ERROR(faults->MaybeFail(kAppendFaultSite));
  }
  std::string bytes;
  for (const MapPatch& patch : patches) {
    bytes.append(EncodeRecord(patch, version_hint));
  }

  // Temp-file + rename: the log flips from old content to new in one
  // atomic step, so a crash or failure anywhere below leaves the old
  // records untouched.
  std::error_code ec;
  std::filesystem::path parent =
      std::filesystem::path(options_.path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::string tmp = options_.path + ".tmp";
  Status written = WriteFileRaw(tmp, bytes, options_.fsync);
  if (!written.ok()) {
    std::filesystem::remove(tmp, ec);
    return written;
  }
  if (fd_ >= 0) {
    ::close(fd_);  // The next Append reopens the renamed-in file.
    fd_ = -1;
  }
  std::filesystem::rename(tmp, options_.path, ec);
  if (ec) {
    Status err =
        Status::Internal("rename " + tmp + ": " + ec.message());
    std::filesystem::remove(tmp, ec);
    return err;
  }
  if (!parent.empty()) {
    HDMAP_RETURN_IF_ERROR(FsyncDir(parent.string(), options_.fsync));
  }
  if (resets_ != nullptr) resets_->Increment();
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<double>(bytes.size()));
  }
  return Status::Ok();
}

Status PatchWal::Archive() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::error_code ec;
  if (!std::filesystem::exists(options_.path, ec)) return Status::Ok();
  std::filesystem::rename(options_.path, options_.path + ".lost", ec);
  if (ec) {
    return Status::Internal("archive " + options_.path + ": " + ec.message());
  }
  std::filesystem::path parent =
      std::filesystem::path(options_.path).parent_path();
  if (!parent.empty()) {
    HDMAP_RETURN_IF_ERROR(FsyncDir(parent.string(), options_.fsync));
  }
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(0.0);
  return Status::Ok();
}

Status PatchWal::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::error_code ec;
  if (!std::filesystem::exists(options_.path, ec)) {
    if (bytes_gauge_ != nullptr) bytes_gauge_->Set(0.0);
    return Status::Ok();
  }
  // Truncate in place (an O_APPEND reopen continues at offset 0).
  int fd = ::open(options_.path.c_str(), O_WRONLY | O_TRUNC);
  if (fd < 0) {
    return Status::Internal("truncate " + options_.path + ": " +
                            std::strerror(errno));
  }
  if (options_.fsync == FsyncMode::kAlways && ::fsync(fd) != 0) {
    Status err = Status::Internal("fsync " + options_.path + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return err;
  }
  ::close(fd);
  if (resets_ != nullptr) resets_->Increment();
  if (bytes_gauge_ != nullptr) bytes_gauge_->Set(0.0);
  return Status::Ok();
}

uint64_t PatchWal::SizeBytes() const {
  std::error_code ec;
  auto size = std::filesystem::file_size(options_.path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

}  // namespace hdmap
