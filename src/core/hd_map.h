#ifndef HDMAP_CORE_HD_MAP_H_
#define HDMAP_CORE_HD_MAP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/elements.h"
#include "core/ids.h"
#include "geometry/kd_tree.h"
#include "geometry/r_tree.h"

namespace hdmap {

/// Result of locating a position on the map at lane level.
struct LaneMatch {
  ElementId lanelet_id = kInvalidId;
  double arc_length = 0.0;     ///< s along the lanelet centerline.
  double signed_offset = 0.0;  ///< Lateral offset from the centerline.
  double distance = 0.0;       ///< |signed_offset|.
};

/// The HD map: a layered container (Lanelet2 [20]) of physical features
/// (landmarks, line features, areas), relational elements (lanelets,
/// regulatory elements) and topology, with spatial query support.
///
/// Mutations invalidate the internal spatial indexes; they are rebuilt
/// lazily on the next query. Iteration order over elements is by id
/// (deterministic).
class HdMap {
 public:
  HdMap() = default;

  // --- Mutation (construction & update pipelines) ---

  /// Adds an element. Fails with kAlreadyExists when the id is taken and
  /// kInvalidArgument for id 0.
  Status AddLandmark(Landmark landmark);
  Status AddLineFeature(LineFeature feature);
  Status AddAreaFeature(AreaFeature feature);
  Status AddLanelet(Lanelet lanelet);
  Status AddRegulatoryElement(RegulatoryElement element);
  Status AddLaneBundle(LaneBundle bundle);
  Status AddMapNode(MapNode node);

  /// Replace*: swaps an existing element wholesale (same id). kNotFound
  /// if absent. Remove*: erases an element; kNotFound if absent. Neither
  /// touches other elements that reference the id — callers own
  /// referential integrity (check with Validate()), matching Add*
  /// semantics.
  Status ReplaceLineFeature(LineFeature feature);
  Status ReplaceLanelet(Lanelet lanelet);
  Status ReplaceRegulatoryElement(RegulatoryElement element);

  Status RemoveLandmark(ElementId id);
  Status RemoveLanelet(ElementId id);
  Status RemoveRegulatoryElement(ElementId id);

  /// Replaces an existing landmark's position in-place.
  Status MoveLandmark(ElementId id, const Vec3& new_position);

  // --- Lookup ---

  /// Mutable lanelet access for construction/update pipelines (e.g.
  /// topology fix-up). Invalidates spatial indexes.
  Lanelet* FindMutableLanelet(ElementId id);

  /// Mutable node access for construction pipelines.
  MapNode* FindMutableMapNode(ElementId id);

  const Landmark* FindLandmark(ElementId id) const;
  const LineFeature* FindLineFeature(ElementId id) const;
  const AreaFeature* FindAreaFeature(ElementId id) const;
  const Lanelet* FindLanelet(ElementId id) const;
  const RegulatoryElement* FindRegulatoryElement(ElementId id) const;
  const LaneBundle* FindLaneBundle(ElementId id) const;
  const MapNode* FindMapNode(ElementId id) const;

  const std::map<ElementId, Landmark>& landmarks() const {
    return landmarks_;
  }
  const std::map<ElementId, LineFeature>& line_features() const {
    return line_features_;
  }
  const std::map<ElementId, AreaFeature>& area_features() const {
    return area_features_;
  }
  const std::map<ElementId, Lanelet>& lanelets() const { return lanelets_; }
  const std::map<ElementId, RegulatoryElement>& regulatory_elements() const {
    return regulatory_elements_;
  }
  const std::map<ElementId, LaneBundle>& lane_bundles() const {
    return lane_bundles_;
  }
  const std::map<ElementId, MapNode>& map_nodes() const {
    return map_nodes_;
  }

  size_t NumElements() const;

  // --- Spatial queries ---

  /// Lane-level match of a position: the nearest lanelet centerline within
  /// `max_distance`, or kNotFound.
  Result<LaneMatch> MatchToLane(const Vec2& position,
                                double max_distance = 10.0) const;

  /// Lanelets whose bounding box (expanded by margin) contains the point,
  /// filtered to those whose corridor actually contains it.
  std::vector<ElementId> LaneletsContaining(const Vec2& position) const;

  /// Lanelets intersecting the query box.
  std::vector<ElementId> LaneletsInBox(const Aabb& box) const;

  /// Landmarks within radius of the query point.
  std::vector<ElementId> LandmarksNear(const Vec2& position,
                                       double radius) const;

  /// Line features intersecting the query box.
  std::vector<ElementId> LineFeaturesInBox(const Aabb& box) const;

  /// Bounding box of all physical content.
  Aabb BoundingBox() const;

  /// The speed limit applying to a lanelet, considering regulatory
  /// elements (falls back to the lanelet's own attribute).
  double EffectiveSpeedLimit(ElementId lanelet_id) const;

  /// Validates referential integrity: boundary/successor/regulatory ids
  /// must resolve, topology must be symmetric. Returns the first problem
  /// found, or OK.
  Status Validate() const;

  /// Forces the lazy spatial indexes to build now. The spatial query
  /// methods build them on first use, which mutates internal state even
  /// through const access; a map shared read-only across threads (e.g. a
  /// published MapSnapshot) must call this once, before sharing, to make
  /// concurrent const queries data-race free.
  void BuildIndexes() const { EnsureIndexes(); }

 private:
  void InvalidateIndexes();
  void EnsureIndexes() const;

  std::map<ElementId, Landmark> landmarks_;
  std::map<ElementId, LineFeature> line_features_;
  std::map<ElementId, AreaFeature> area_features_;
  std::map<ElementId, Lanelet> lanelets_;
  std::map<ElementId, RegulatoryElement> regulatory_elements_;
  std::map<ElementId, LaneBundle> lane_bundles_;
  std::map<ElementId, MapNode> map_nodes_;

  // Lazily built spatial indexes.
  mutable bool indexes_valid_ = false;
  mutable RTree lanelet_index_;
  mutable RTree line_feature_index_;
  mutable KdTree landmark_index_;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_HD_MAP_H_
