#include "replication/wal_shipper.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/protocol.h"
#include "net/tile_server.h"

namespace hdmap {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

WalShipper::WalShipper(Options options) : opts_(std::move(options)) {
  if (opts_.metrics != nullptr) {
    batches_shipped_ = opts_.metrics->GetCounter("repl.batches_shipped");
    records_shipped_ = opts_.metrics->GetCounter("repl.records_shipped");
    heartbeats_ = opts_.metrics->GetCounter("repl.heartbeats");
    ship_failures_ = opts_.metrics->GetCounter("repl.ship_failures");
    catchups_served_ = opts_.metrics->GetCounter("repl.catchups_served");
    stale_term_acks_ = opts_.metrics->GetCounter("repl.stale_term_acks");
  }
}

WalShipper::~WalShipper() {
  RequestStop();
  Join();
}

void WalShipper::AddFollower(const FollowerInfo& follower) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) return;
  for (const auto& session : sessions_) {
    if (session->info.node_id == follower.node_id) return;
  }
  auto session = std::make_unique<Session>();
  session->info = follower;
  if (opts_.metrics != nullptr) {
    std::string tag = "{FOLLOWER" + std::to_string(follower.node_id) + "}";
    session->lag_records_gauge =
        opts_.metrics->GetGauge("replication.lag_records" + tag);
    session->lag_ms_gauge = opts_.metrics->GetGauge("replication.lag_ms" + tag);
    opts_.metrics->SetHelp("replication.lag_records",
                           "Records this follower trails the leader's log by");
    opts_.metrics->SetHelp(
        "replication.lag_ms",
        "Age of this follower's oldest unacked record, leader clock");
  }
  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  raw->thread = std::thread([this, raw] { RunSession(raw); });
}

bool WalShipper::HasFollower(int node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->info.node_id == node_id) return true;
  }
  return false;
}

size_t WalShipper::num_followers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void WalShipper::RequestStop() {
  stopping_.store(true);
  std::lock_guard<std::mutex> lock(mu_);
  wake_cv_.notify_all();
  ack_cv_.notify_all();
}

void WalShipper::Join() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& session : sessions_) {
      if (session->thread.joinable()) threads.push_back(std::move(session->thread));
    }
  }
  for (std::thread& thread : threads) thread.join();
}

void WalShipper::NotifyAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  wake_cv_.notify_all();
}

size_t WalShipper::CountAckedAtLeast(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& session : sessions_) {
    if (session->acked_seq.load(std::memory_order_acquire) >= seq) ++n;
  }
  return n;
}

bool WalShipper::WaitForAcks(uint64_t seq, size_t min_count,
                             uint32_t timeout_ms) const {
  if (min_count == 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  return ack_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        if (stopping_.load()) return true;
        size_t n = 0;
        for (const auto& session : sessions_) {
          if (session->acked_seq.load(std::memory_order_acquire) >= seq) ++n;
        }
        return n >= min_count;
      }) &&
         !stopping_.load();
}

uint64_t WalShipper::AckedSeq(int node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->info.node_id == node_id) {
      return session->acked_seq.load(std::memory_order_acquire);
    }
  }
  return 0;
}

std::vector<WalShipper::FollowerProgress> WalShipper::Progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FollowerProgress> out;
  out.reserve(sessions_.size());
  uint64_t end = opts_.log != nullptr ? opts_.log->end_seq() : 0;
  for (const auto& session : sessions_) {
    FollowerProgress progress;
    progress.node_id = session->info.node_id;
    progress.acked_seq = session->acked_seq.load(std::memory_order_acquire);
    progress.lag_records =
        end > progress.acked_seq ? end - progress.acked_seq : 0;
    progress.lag_ms = opts_.log != nullptr
                          ? opts_.log->OldestPendingAgeMs(progress.acked_seq + 1)
                          : 0.0;
    out.push_back(progress);
  }
  return out;
}

bool WalShipper::Exchange(NetClient& client, Session* session,
                          NetRequestType type, std::string payload,
                          ReplAck* ack) {
  if (!client.connected()) {
    if (!client.Connect(session->info.host, session->info.port).ok()) {
      return false;
    }
  }
  NetRequest request;
  request.type = type;
  request.payload = std::move(payload);
  Result<NetResponse> response = client.CallWithRetry(request);
  if (!response.ok()) {
    client.Close();
    return false;
  }
  if (response.value().code != NetResponseCode::kOk) return false;
  Result<ReplAck> decoded = DecodeAck(response.value().payload);
  if (!decoded.ok()) return false;
  *ack = decoded.value();
  return true;
}

void WalShipper::RunSession(Session* session) {
  NetClient client;
  NetClient::RetryOptions retry;
  // The session loop is its own retry engine (it must re-read the log and
  // re-check the term between tries), so the client gets one bounded
  // attempt per exchange.
  retry.max_attempts = 1;
  retry.deadline_ms = opts_.io_timeout_ms;
  client.set_retry_options(retry);

  // Follower position as last acked; 0 = unknown, learned from the first
  // heartbeat's ack.
  uint64_t next = 0;
  bool force_catchup = false;
  Clock::time_point last_send =
      Clock::now() - std::chrono::milliseconds(opts_.heartbeat_interval_ms);

  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      Clock::time_point deadline =
          last_send + std::chrono::milliseconds(opts_.heartbeat_interval_ms);
      wake_cv_.wait_until(lock, deadline, [&] {
        return stopping_.load() ||
               (next != 0 && !force_catchup && opts_.log->end_seq() >= next);
      });
    }
    if (stopping_.load()) break;
    last_send = Clock::now();
    if (opts_.partitioned && opts_.partitioned()) continue;

    uint64_t term = opts_.term->load(std::memory_order_acquire);

    // Each exchange runs under its own root span: the ambient context it
    // installs is what NetClient::Send stamps into the outgoing frame,
    // so the follower's server-side net.request span parents under the
    // leader's shipping trace (one replication RPC, one tree).
    TraceSpan ship_span("repl.ship", TraceSpan::kRoot, opts_.trace);

    // Gather what the follower needs: log records from its position, or a
    // snapshot when that position was trimmed away (or the follower asked).
    ReplShipBatch batch;
    batch.term = term;
    batch.leader_end_seq = opts_.log->end_seq();
    bool need_snapshot = force_catchup;
    if (!need_snapshot && next != 0) {
      Result<std::vector<ReplRecord>> read =
          opts_.log->ReadFrom(next, opts_.max_batch_records,
                              opts_.max_batch_bytes);
      if (read.ok()) {
        batch.records = std::move(read.value());
      } else {
        need_snapshot = true;  // kOutOfRange: position trimmed
      }
    }

    ReplAck ack;
    if (need_snapshot) {
      std::string payload =
          opts_.catchup_source ? opts_.catchup_source() : std::string();
      if (payload.empty()) continue;  // unavailable right now; retry later
      // A catch-up carries a whole snapshot; give it a wider deadline
      // than the per-batch one.
      NetClient::RetryOptions wide = retry;
      wide.deadline_ms = opts_.io_timeout_ms * 4;
      client.set_retry_options(wide);
      bool sent = Exchange(client, session, NetRequestType::kCatchUp,
                           std::move(payload), &ack);
      client.set_retry_options(retry);
      if (!sent) {
        if (ship_failures_ != nullptr) ship_failures_->Increment();
        continue;
      }
      if (catchups_served_ != nullptr) catchups_served_->Increment();
    } else {
      if (batch.records.empty()) {
        // Heartbeat. An injected heartbeat fault is silence, not an error
        // frame — the failure mode the failover detector keys on.
        if (opts_.faults != nullptr &&
            !opts_.faults->MaybeFail(kHeartbeatFaultSite).ok()) {
          continue;
        }
      }
      std::string payload = EncodeShipBatch(batch);
      if (opts_.faults != nullptr) {
        std::string corrupted;
        if (opts_.faults->MaybeCorrupt(kShipFaultSite, payload, &corrupted)) {
          payload = std::move(corrupted);
        }
      }
      if (!Exchange(client, session, NetRequestType::kReplicate,
                    std::move(payload), &ack)) {
        if (ship_failures_ != nullptr) ship_failures_->Increment();
        continue;
      }
      if (batch.records.empty()) {
        if (heartbeats_ != nullptr) heartbeats_->Increment();
      } else {
        if (batches_shipped_ != nullptr) batches_shipped_->Increment();
        if (records_shipped_ != nullptr) {
          records_shipped_->Increment(batch.records.size());
        }
      }
    }

    if ((ack.flags & kReplAckStaleTerm) != 0 ||
        ack.term > opts_.term->load(std::memory_order_acquire)) {
      // This leader was deposed. Report and keep idling; the node's
      // StepDown will RequestStop us.
      if (stale_term_acks_ != nullptr) stale_term_acks_->Increment();
      if (opts_.on_stale_term) opts_.on_stale_term(ack.term);
      continue;
    }
    force_catchup = (ack.flags & kReplAckNeedCatchUp) != 0;
    next = ack.next_seq;
    uint64_t acked = ack.next_seq == 0 ? 0 : ack.next_seq - 1;
    session->acked_seq.store(acked, std::memory_order_release);
    if (session->lag_records_gauge != nullptr) {
      // Per-follower lag after every ack: in records against the current
      // log end, and in leader-clock milliseconds as the age of the
      // oldest record the follower has not acked (0 when caught up).
      uint64_t end = opts_.log->end_seq();
      session->lag_records_gauge->Set(
          static_cast<double>(end > acked ? end - acked : 0));
      session->lag_ms_gauge->Set(opts_.log->OldestPendingAgeMs(acked + 1));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ack_cv_.notify_all();
    }
  }
  client.Close();
}

}  // namespace hdmap
