#include "core/hd_map.h"

#include <algorithm>
#include <string>

namespace hdmap {

namespace {

template <typename T>
Status AddTo(std::map<ElementId, T>& container, T element,
             const char* kind) {
  if (element.id == kInvalidId) {
    return Status::InvalidArgument(std::string(kind) + " id must not be 0");
  }
  auto [it, inserted] = container.emplace(element.id, std::move(element));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(std::string(kind) + " id " +
                                 std::to_string(it->first) +
                                 " already exists");
  }
  return Status::Ok();
}

template <typename T>
const T* FindIn(const std::map<ElementId, T>& container, ElementId id) {
  auto it = container.find(id);
  return it == container.end() ? nullptr : &it->second;
}

}  // namespace

Status HdMap::AddLandmark(Landmark landmark) {
  InvalidateIndexes();
  return AddTo(landmarks_, std::move(landmark), "landmark");
}

Status HdMap::AddLineFeature(LineFeature feature) {
  InvalidateIndexes();
  return AddTo(line_features_, std::move(feature), "line feature");
}

Status HdMap::AddAreaFeature(AreaFeature feature) {
  InvalidateIndexes();
  return AddTo(area_features_, std::move(feature), "area feature");
}

Status HdMap::AddLanelet(Lanelet lanelet) {
  if (lanelet.centerline.size() < 2) {
    return Status::InvalidArgument(
        "lanelet centerline needs at least 2 points");
  }
  InvalidateIndexes();
  return AddTo(lanelets_, std::move(lanelet), "lanelet");
}

Status HdMap::AddRegulatoryElement(RegulatoryElement element) {
  return AddTo(regulatory_elements_, std::move(element),
               "regulatory element");
}

Status HdMap::AddLaneBundle(LaneBundle bundle) {
  return AddTo(lane_bundles_, std::move(bundle), "lane bundle");
}

Status HdMap::AddMapNode(MapNode node) {
  return AddTo(map_nodes_, std::move(node), "map node");
}

Status HdMap::ReplaceLineFeature(LineFeature feature) {
  auto it = line_features_.find(feature.id);
  if (it == line_features_.end()) {
    return Status::NotFound("line feature " + std::to_string(feature.id));
  }
  it->second = std::move(feature);
  InvalidateIndexes();
  return Status::Ok();
}

Status HdMap::ReplaceLanelet(Lanelet lanelet) {
  if (lanelet.centerline.size() < 2) {
    return Status::InvalidArgument(
        "lanelet centerline needs at least 2 points");
  }
  auto it = lanelets_.find(lanelet.id);
  if (it == lanelets_.end()) {
    return Status::NotFound("lanelet " + std::to_string(lanelet.id));
  }
  it->second = std::move(lanelet);
  InvalidateIndexes();
  return Status::Ok();
}

Status HdMap::ReplaceRegulatoryElement(RegulatoryElement element) {
  auto it = regulatory_elements_.find(element.id);
  if (it == regulatory_elements_.end()) {
    return Status::NotFound("regulatory element " +
                            std::to_string(element.id));
  }
  it->second = std::move(element);
  return Status::Ok();
}

Status HdMap::RemoveLandmark(ElementId id) {
  auto it = landmarks_.find(id);
  if (it == landmarks_.end()) {
    return Status::NotFound("landmark " + std::to_string(id));
  }
  landmarks_.erase(it);
  InvalidateIndexes();
  return Status::Ok();
}

Status HdMap::RemoveLanelet(ElementId id) {
  auto it = lanelets_.find(id);
  if (it == lanelets_.end()) {
    return Status::NotFound("lanelet " + std::to_string(id));
  }
  lanelets_.erase(it);
  InvalidateIndexes();
  return Status::Ok();
}

Status HdMap::RemoveRegulatoryElement(ElementId id) {
  auto it = regulatory_elements_.find(id);
  if (it == regulatory_elements_.end()) {
    return Status::NotFound("regulatory element " + std::to_string(id));
  }
  regulatory_elements_.erase(it);
  return Status::Ok();
}

Status HdMap::MoveLandmark(ElementId id, const Vec3& new_position) {
  auto it = landmarks_.find(id);
  if (it == landmarks_.end()) {
    return Status::NotFound("landmark " + std::to_string(id));
  }
  it->second.position = new_position;
  InvalidateIndexes();
  return Status::Ok();
}

Lanelet* HdMap::FindMutableLanelet(ElementId id) {
  auto it = lanelets_.find(id);
  if (it == lanelets_.end()) return nullptr;
  InvalidateIndexes();
  return &it->second;
}

MapNode* HdMap::FindMutableMapNode(ElementId id) {
  auto it = map_nodes_.find(id);
  return it == map_nodes_.end() ? nullptr : &it->second;
}

const Landmark* HdMap::FindLandmark(ElementId id) const {
  return FindIn(landmarks_, id);
}
const LineFeature* HdMap::FindLineFeature(ElementId id) const {
  return FindIn(line_features_, id);
}
const AreaFeature* HdMap::FindAreaFeature(ElementId id) const {
  return FindIn(area_features_, id);
}
const Lanelet* HdMap::FindLanelet(ElementId id) const {
  return FindIn(lanelets_, id);
}
const RegulatoryElement* HdMap::FindRegulatoryElement(ElementId id) const {
  return FindIn(regulatory_elements_, id);
}
const LaneBundle* HdMap::FindLaneBundle(ElementId id) const {
  return FindIn(lane_bundles_, id);
}
const MapNode* HdMap::FindMapNode(ElementId id) const {
  return FindIn(map_nodes_, id);
}

size_t HdMap::NumElements() const {
  return landmarks_.size() + line_features_.size() + area_features_.size() +
         lanelets_.size() + regulatory_elements_.size() +
         lane_bundles_.size() + map_nodes_.size();
}

void HdMap::InvalidateIndexes() { indexes_valid_ = false; }

void HdMap::EnsureIndexes() const {
  if (indexes_valid_) return;
  std::vector<RTree::Entry> lanelet_entries;
  lanelet_entries.reserve(lanelets_.size());
  for (const auto& [id, ll] : lanelets_) {
    // Expand by a nominal half lane width so that QueryPoint from within
    // the lane body hits even for straight, axis-aligned lanes.
    lanelet_entries.push_back({ll.centerline.BoundingBox().Expanded(3.0), id});
  }
  lanelet_index_ = RTree(std::move(lanelet_entries));

  std::vector<RTree::Entry> line_entries;
  line_entries.reserve(line_features_.size());
  for (const auto& [id, lf] : line_features_) {
    line_entries.push_back({lf.geometry.BoundingBox(), id});
  }
  line_feature_index_ = RTree(std::move(line_entries));

  std::vector<KdTree::Entry> landmark_entries;
  landmark_entries.reserve(landmarks_.size());
  for (const auto& [id, lm] : landmarks_) {
    landmark_entries.push_back({lm.position.xy(), id});
  }
  landmark_index_ = KdTree(std::move(landmark_entries));
  indexes_valid_ = true;
}

Result<LaneMatch> HdMap::MatchToLane(const Vec2& position,
                                     double max_distance) const {
  EnsureIndexes();
  std::vector<int64_t> candidates =
      lanelet_index_.Query(Aabb::FromPoint(position, max_distance));
  LaneMatch best;
  double best_distance = max_distance;
  bool found = false;
  for (int64_t id : candidates) {
    const Lanelet& ll = lanelets_.at(id);
    LineStringProjection proj = ll.centerline.Project(position);
    if (proj.distance <= best_distance) {
      best_distance = proj.distance;
      best.lanelet_id = id;
      best.arc_length = proj.arc_length;
      best.signed_offset = proj.signed_offset;
      best.distance = proj.distance;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no lanelet within max_distance");
  }
  return best;
}

std::vector<ElementId> HdMap::LaneletsContaining(const Vec2& position) const {
  EnsureIndexes();
  std::vector<ElementId> out;
  for (int64_t id : lanelet_index_.QueryPoint(position)) {
    const Lanelet& ll = lanelets_.at(id);
    // Treat the lane body as the corridor within half a lane width
    // (estimated from the boundary spacing when available, else 2 m).
    double half_width = 2.0;
    const LineFeature* left = FindLineFeature(ll.left_boundary_id);
    const LineFeature* right = FindLineFeature(ll.right_boundary_id);
    LineStringProjection proj = ll.centerline.Project(position);
    if (left != nullptr && right != nullptr && !left->geometry.empty() &&
        !right->geometry.empty()) {
      double width = left->geometry.DistanceTo(proj.point) +
                     right->geometry.DistanceTo(proj.point);
      half_width = width / 2.0;
    }
    if (proj.distance <= half_width &&
        proj.arc_length > 0.0 && proj.arc_length < ll.Length()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<ElementId> HdMap::LaneletsInBox(const Aabb& box) const {
  EnsureIndexes();
  return lanelet_index_.Query(box);
}

std::vector<ElementId> HdMap::LandmarksNear(const Vec2& position,
                                            double radius) const {
  EnsureIndexes();
  std::vector<ElementId> out;
  for (const KdTree::Entry& e : landmark_index_.RadiusSearch(position,
                                                             radius)) {
    out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementId> HdMap::LineFeaturesInBox(const Aabb& box) const {
  EnsureIndexes();
  return line_feature_index_.Query(box);
}

Aabb HdMap::BoundingBox() const {
  Aabb box;
  for (const auto& [id, lf] : line_features_) {
    box.Extend(lf.geometry.BoundingBox());
  }
  for (const auto& [id, ll] : lanelets_) {
    box.Extend(ll.centerline.BoundingBox());
  }
  for (const auto& [id, lm] : landmarks_) {
    box.Extend(lm.position.xy());
  }
  for (const auto& [id, af] : area_features_) {
    box.Extend(af.geometry.BoundingBox());
  }
  return box;
}

double HdMap::EffectiveSpeedLimit(ElementId lanelet_id) const {
  const Lanelet* ll = FindLanelet(lanelet_id);
  if (ll == nullptr) return 0.0;
  double limit = ll->speed_limit_mps;
  for (ElementId reg_id : ll->regulatory_ids) {
    const RegulatoryElement* reg = FindRegulatoryElement(reg_id);
    if (reg != nullptr && reg->type == RegulatoryType::kSpeedLimit &&
        reg->speed_limit_mps > 0.0) {
      limit = std::min(limit, reg->speed_limit_mps);
    }
  }
  return limit;
}

Status HdMap::Validate() const {
  for (const auto& [id, ll] : lanelets_) {
    auto check_line = [&](ElementId line_id, const char* what) -> Status {
      if (line_id != kInvalidId && FindLineFeature(line_id) == nullptr) {
        return Status::FailedPrecondition(
            "lanelet " + std::to_string(id) + ": dangling " + what + " " +
            std::to_string(line_id));
      }
      return Status::Ok();
    };
    HDMAP_RETURN_IF_ERROR(check_line(ll.left_boundary_id, "left boundary"));
    HDMAP_RETURN_IF_ERROR(check_line(ll.right_boundary_id, "right boundary"));
    for (ElementId succ : ll.successors) {
      const Lanelet* s = FindLanelet(succ);
      if (s == nullptr) {
        return Status::FailedPrecondition(
            "lanelet " + std::to_string(id) + ": dangling successor " +
            std::to_string(succ));
      }
      if (std::find(s->predecessors.begin(), s->predecessors.end(), id) ==
          s->predecessors.end()) {
        return Status::FailedPrecondition(
            "topology asymmetry: " + std::to_string(id) + " -> " +
            std::to_string(succ) + " lacks back link");
      }
    }
    for (ElementId reg_id : ll.regulatory_ids) {
      if (FindRegulatoryElement(reg_id) == nullptr) {
        return Status::FailedPrecondition(
            "lanelet " + std::to_string(id) + ": dangling regulatory " +
            std::to_string(reg_id));
      }
    }
  }
  for (const auto& [id, reg] : regulatory_elements_) {
    for (ElementId ll_id : reg.lanelet_ids) {
      if (FindLanelet(ll_id) == nullptr) {
        return Status::FailedPrecondition(
            "regulatory " + std::to_string(id) + ": dangling lanelet " +
            std::to_string(ll_id));
      }
    }
  }
  for (const auto& [id, bundle] : lane_bundles_) {
    for (ElementId ll_id : bundle.lanelet_ids) {
      if (FindLanelet(ll_id) == nullptr) {
        return Status::FailedPrecondition(
            "bundle " + std::to_string(id) + ": dangling lanelet " +
            std::to_string(ll_id));
      }
    }
  }
  return Status::Ok();
}

}  // namespace hdmap
