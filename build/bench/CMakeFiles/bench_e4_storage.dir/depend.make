# Empty dependencies file for bench_e4_storage.
# This may be replaced when dependencies are built.
