#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hdmap {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t combined = count_ + other.count_;
  double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(combined);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(combined);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = combined;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Rmse(const std::vector<double>& errors) {
  if (errors.empty()) return 0.0;
  double total = 0.0;
  for (double e : errors) total += e * e;
  return std::sqrt(total / static_cast<double>(errors.size()));
}

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo),
      width_(hi > lo ? (hi - lo) /
                           static_cast<double>(num_bins > 0 ? num_bins : 1)
                     : 1.0),
      counts_(static_cast<size_t>(num_bins > 0 ? num_bins : 1), 0) {}

void Histogram::Add(double x) {
  ++total_;
  double offset = (x - lo_) / width_;
  if (offset < 0.0) {
    ++underflow_;
    return;
  }
  // Range-check in floating point before casting: converting a double
  // that exceeds INT_MAX (or NaN) to int is UB. The negated comparison
  // also routes NaN to overflow.
  if (!(offset < static_cast<double>(num_bins()))) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(static_cast<int>(offset))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.width_ != width_) {
    return;
  }
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::string Histogram::ToAscii(int max_bar_width) const {
  size_t max_count = 1;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (int b = 0; b < num_bins(); ++b) {
    int bar = static_cast<int>(
        static_cast<double>(counts_[static_cast<size_t>(b)]) /
        static_cast<double>(max_count) * max_bar_width);
    std::snprintf(line, sizeof(line), "[%7.2f, %7.2f) %8zu  ", bin_lo(b),
                  bin_hi(b), counts_[static_cast<size_t>(b)]);
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow (< %7.2f)   %8zu\n", lo_,
                  underflow_);
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow (>= %7.2f)   %8zu\n",
                  bin_hi(num_bins() - 1), overflow_);
    out += line;
  }
  return out;
}

void BinaryConfusion::Add(bool predicted, bool actual) {
  if (predicted && actual) {
    ++tp;
  } else if (predicted && !actual) {
    ++fp;
  } else if (!predicted && actual) {
    ++fn;
  } else {
    ++tn;
  }
}

double BinaryConfusion::Sensitivity() const {
  size_t denom = tp + fn;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double BinaryConfusion::Specificity() const {
  size_t denom = tn + fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(tn) / static_cast<double>(denom);
}

double BinaryConfusion::Precision() const {
  size_t denom = tp + fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double BinaryConfusion::Accuracy() const {
  size_t denom = tp + fp + tn + fn;
  return denom == 0
             ? 0.0
             : static_cast<double>(tp + tn) / static_cast<double>(denom);
}

double BinaryConfusion::F1() const {
  double p = Precision();
  double r = Sensitivity();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace hdmap
