#include "replication/replication_log.h"

#include <utility>

#include "core/serialization.h"

namespace hdmap {

ReplicationLog::ReplicationLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t ReplicationLog::Append(ReplRecordKind kind, uint64_t term,
                                uint64_t version, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplRecord record;
  record.seq = next_seq_++;
  record.term = term;
  record.kind = kind;
  record.version = version;
  record.payload = std::move(payload);
  records_.push_back(std::move(record));
  stamps_.push_back(std::chrono::steady_clock::now());
  return records_.back().seq;
}

Status ReplicationLog::AppendReplicated(const ReplRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.seq != next_seq_) {
    return Status::InvalidArgument(
        "replicated record seq " + std::to_string(record.seq) +
        " is not the next position " + std::to_string(next_seq_));
  }
  records_.push_back(record);
  stamps_.push_back(std::chrono::steady_clock::now());
  ++next_seq_;
  return Status::Ok();
}

Result<size_t> ReplicationLog::InitFromWal(const PatchWal& wal, uint64_t term,
                                           uint64_t first_seq) {
  Result<PatchWal::ReplayResult> replayed = wal.Replay();
  if (!replayed.ok()) return replayed.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (!records_.empty()) {
    return Status::FailedPrecondition(
        "InitFromWal requires an empty replication log");
  }
  next_seq_ = first_seq == 0 ? 1 : first_seq;
  for (const PatchWal::ReplayedRecord& rec : replayed.value().records) {
    ReplRecord record;
    record.seq = next_seq_++;
    record.term = term;
    record.kind = ReplRecordKind::kPatch;
    record.version = rec.version_hint;
    record.payload = SerializePatch(rec.patch);
    records_.push_back(std::move(record));
    stamps_.push_back(std::chrono::steady_clock::now());
  }
  return records_.size();
}

Result<std::vector<ReplRecord>> ReplicationLog::ReadFrom(
    uint64_t from_seq, size_t max_records, size_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t start = records_.empty() ? next_seq_ : records_.front().seq;
  if (from_seq < start) {
    return Status::OutOfRange(
        "seq " + std::to_string(from_seq) + " was trimmed (log starts at " +
        std::to_string(start) + "); catch-up snapshot required");
  }
  std::vector<ReplRecord> out;
  size_t bytes = 0;
  for (const ReplRecord& record : records_) {
    if (record.seq < from_seq) continue;
    if (!out.empty() &&
        (out.size() >= max_records || bytes + record.WireSize() > max_bytes)) {
      break;
    }
    bytes += record.WireSize();
    out.push_back(record);
  }
  return out;
}

void ReplicationLog::TrimToCapacity(uint64_t keep_from_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  while (records_.size() > capacity_ &&
         records_.front().seq < keep_from_seq) {
    records_.pop_front();
    stamps_.pop_front();
  }
}

void ReplicationLog::ResetTo(uint64_t next_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  stamps_.clear();
  next_seq_ = next_seq == 0 ? 1 : next_seq;
}

uint64_t ReplicationLog::start_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.empty() ? next_seq_ : records_.front().seq;
}

uint64_t ReplicationLog::end_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

double ReplicationLog::OldestPendingAgeMs(uint64_t next_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.empty() || next_seq >= next_seq_) return 0.0;
  uint64_t start = records_.front().seq;
  if (next_seq < start) return 0.0;  // Trimmed: age unknowable.
  size_t index = static_cast<size_t>(next_seq - start);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - stamps_[index])
      .count();
}

}  // namespace hdmap
