#include "creation/online_map_builder.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

OnlineMapBuilder::OnlineMapBuilder(const Options& options)
    : options_(options) {}

void OnlineMapBuilder::IntegrateFrame(
    const Pose2& pose, const std::vector<MarkingPoint>& scan,
    const std::vector<LandmarkDetection>& detections) {
  ++num_frames_;
  double res = options_.resolution;
  auto cell_of = [&](const Vec2& world) {
    return std::pair<int, int>{
        static_cast<int>(std::floor(world.x / res)),
        static_cast<int>(std::floor(world.y / res))};
  };
  for (const MarkingPoint& p : scan) {
    Vec2 world = pose.TransformPoint(p.position_vehicle);
    if (world.DistanceTo(pose.translation) > options_.extent) continue;
    observed_.Extend(world);
    CellEvidence& cell = evidence_[cell_of(world)];
    if (p.intensity >= options_.intensity_threshold) {
      ++cell.marking;
    } else {
      // Low-intensity returns vote weakly for drivable surface; curbs
      // and edges come from their characteristic intensity band.
      if (p.intensity < 0.45 && p.intensity > 0.2) ++cell.road_edge;
    }
  }
  for (const LandmarkDetection& det : detections) {
    Vec2 world = pose.TransformPoint(det.position_vehicle);
    if (world.DistanceTo(pose.translation) > options_.extent) continue;
    observed_.Extend(world);
    CellEvidence& cell = evidence_[cell_of(world)];
    if (det.type == LandmarkType::kTrafficLight) {
      ++cell.light;
    } else {
      ++cell.sign;
    }
  }
}

SemanticRaster OnlineMapBuilder::Build() const {
  if (observed_.IsEmpty()) {
    return SemanticRaster(Aabb({0, 0}, {1, 1}), options_.resolution);
  }
  SemanticRaster raster(observed_.Expanded(options_.resolution),
                        options_.resolution);
  double res = options_.resolution;
  for (const auto& [key, cell] : evidence_) {
    Vec2 center{(key.first + 0.5) * res, (key.second + 0.5) * res};
    int cx = 0, cy = 0;
    raster.WorldToCell(center, &cx, &cy);
    if (cell.marking >= options_.min_evidence) {
      raster.Set(cx, cy, kRasterLaneMarking);
    }
    if (cell.road_edge >= options_.min_evidence * 2 &&
        cell.road_edge > cell.marking) {
      raster.Set(cx, cy, kRasterRoadEdge);
    }
    if (cell.sign >= options_.min_evidence) {
      raster.Set(cx, cy, kRasterSign);
    }
    if (cell.light >= options_.min_evidence) {
      raster.Set(cx, cy, kRasterLight);
    }
  }
  return raster;
}

double OnlineMapBuilder::Iou(const SemanticRaster& built,
                             const SemanticRaster& truth) {
  size_t intersection = 0;
  size_t union_count = 0;
  for (int cy = 0; cy < built.height(); ++cy) {
    for (int cx = 0; cx < built.width(); ++cx) {
      bool b = built.At(cx, cy) != 0;
      bool t = truth.Sample(built.CellCenter(cx, cy)) != 0;
      if (b || t) ++union_count;
      if (b && t) ++intersection;
    }
  }
  return union_count == 0
             ? 0.0
             : static_cast<double>(intersection) / union_count;
}

}  // namespace hdmap
