#ifndef HDMAP_GEOMETRY_LINE_FITTING_H_
#define HDMAP_GEOMETRY_LINE_FITTING_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Infinite line in normal form: n . p = c with |n| = 1.
struct Line {
  Vec2 normal{0.0, 1.0};
  double offset = 0.0;

  double DistanceTo(const Vec2& p) const {
    return std::abs(normal.Dot(p) - offset);
  }
  /// Direction along the line.
  Vec2 Direction() const { return normal.Perp(); }
};

/// Total-least-squares line fit (PCA). Requires >= 2 points.
std::optional<Line> FitLineLeastSquares(const std::vector<Vec2>& points);

struct RansacOptions {
  int max_iterations = 100;
  double inlier_threshold = 0.15;  // meters
  int min_inliers = 5;
};

struct RansacLineResult {
  Line line;
  std::vector<int> inliers;  // Indices into the input point set.
};

/// RANSAC line fit with least-squares refinement on the inlier set.
/// Used by LiDAR lane-marking extraction (Ghallabi et al. style).
std::optional<RansacLineResult> FitLineRansac(
    const std::vector<Vec2>& points, const RansacOptions& options, Rng& rng);

/// Peak found by the Hough transform: a line plus its supporting votes.
struct HoughPeak {
  double rho = 0.0;    // Signed distance of line from origin.
  double theta = 0.0;  // Normal angle in [0, pi).
  int votes = 0;

  Line ToLine() const {
    Line l;
    l.normal = {std::cos(theta), std::sin(theta)};
    l.offset = rho;
    return l;
  }
};

struct HoughOptions {
  double rho_resolution = 0.2;            // meters
  double theta_resolution = 0.0174533;    // ~1 degree, radians
  int min_votes = 8;
  int max_peaks = 16;
  /// Peaks closer than this (in accumulator cells) to a stronger peak are
  /// suppressed.
  int suppression_radius = 3;
};

/// Classical Hough line transform over a 2-D point set, with non-maximum
/// suppression. Points should be roughly centered near the origin for a
/// compact accumulator (callers typically pass sensor-frame points).
std::vector<HoughPeak> HoughLines(const std::vector<Vec2>& points,
                                  const HoughOptions& options);

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_LINE_FITTING_H_
