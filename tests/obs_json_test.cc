// Unit tests for the observability-plane JSON parser and the pure parts
// of ClusterInspector: kStats document parsing and Chrome-trace merging.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/event_log.h"
#include "obs/cluster_inspector.h"

namespace hdmap {
namespace {

TEST(ObsJsonTest, ParsesScalars) {
  auto parsed = ParseJson("  {\"a\":1.5,\"b\":\"x\",\"c\":true,\"d\":null,"
                          "\"e\":false,\"f\":-7}  ");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.GetNumber("a"), 1.5);
  EXPECT_EQ(doc.GetString("b"), "x");
  ASSERT_NE(doc.Find("c"), nullptr);
  EXPECT_TRUE(doc.Find("c")->bool_value);
  EXPECT_TRUE(doc.Find("d")->is_null());
  EXPECT_FALSE(doc.Find("e")->bool_value);
  EXPECT_EQ(doc.GetI64("f"), -7);
}

TEST(ObsJsonTest, ParsesNestedArraysAndObjects) {
  auto parsed = ParseJson("{\"rows\":[{\"id\":1},{\"id\":2},[3,4],[]]}");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 4u);
  EXPECT_EQ(rows->array[0].GetI64("id"), 1);
  EXPECT_EQ(rows->array[1].GetI64("id"), 2);
  ASSERT_EQ(rows->array[2].array.size(), 2u);
  EXPECT_DOUBLE_EQ(rows->array[2].array[1].number_value, 4.0);
  EXPECT_TRUE(rows->array[3].array.empty());
}

TEST(ObsJsonTest, DecodesStringEscapes) {
  auto parsed = ParseJson("{\"s\":\"a\\\"b\\\\c\\nd\\t\\u0041\\u0007\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("s"), "a\"b\\c\nd\tA\x07");
}

TEST(ObsJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(ObsJsonTest, RejectsPathologicalNesting) {
  std::string deep(256, '[');
  deep += std::string(256, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ObsJsonTest, TypedAccessorsFallBackOnShapeMismatch) {
  auto parsed = ParseJson("{\"s\":\"text\",\"n\":3}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetNumber("s", -1.0), -1.0);   // wrong kind
  EXPECT_EQ(parsed->GetString("n", "dflt"), "dflt");
  EXPECT_EQ(parsed->GetU64("missing", 9), 9u);     // absent key
  EXPECT_EQ(parsed->array.size(), 0u);
}

TEST(ObsJsonTest, ParseNodeStatsReadsFullDocument) {
  // A hand-built kStats document in the exact wire shape BuildStatsPayload
  // emits (including the string-typed trace_id).
  std::string doc =
      "{\"node\":{\"label\":\"node-2\",\"health\":\"SERVING\","
      "\"version\":12,\"unix_ms\":1754700000123},"
      "\"replication\":{\"node_id\":2,\"role\":\"LEADER\",\"term\":4,"
      "\"applied_seq\":40,\"last_publish_seq\":40,\"log_start_seq\":1,"
      "\"log_end_seq\":40,\"ms_since_leader_contact\":3.5,"
      "\"followers\":[{\"node_id\":0,\"acked_seq\":40,\"lag_records\":0,"
      "\"lag_ms\":0.0},{\"node_id\":1,\"acked_seq\":37,\"lag_records\":3,"
      "\"lag_ms\":18.2}]},"
      "\"events\":[{\"seq\":5,\"unix_ms\":1754700000100,"
      "\"type\":\"FAILOVER_COMPLETE\",\"code\":\"OK\","
      "\"trace_id\":\"18446744073709551615\",\"detail\":\"node 2 is leader\"}],"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}}\n";
  auto stats = ClusterInspector::ParseNodeStats(2, doc);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->reachable);
  EXPECT_EQ(stats->label, "node-2");
  EXPECT_EQ(stats->health, "SERVING");
  EXPECT_EQ(stats->version, 12u);
  EXPECT_EQ(stats->role, "LEADER");
  EXPECT_EQ(stats->term, 4u);
  EXPECT_EQ(stats->applied_seq, 40u);
  ASSERT_EQ(stats->followers.size(), 2u);
  EXPECT_EQ(stats->followers[1].node_id, 1);
  EXPECT_EQ(stats->followers[1].lag_records, 3u);
  EXPECT_DOUBLE_EQ(stats->followers[1].lag_ms, 18.2);
  ASSERT_EQ(stats->events.size(), 1u);
  EXPECT_EQ(stats->events[0].type, EventLog::Type::kFailoverComplete);
  // 64-bit trace ids survive the string encoding exactly.
  EXPECT_EQ(stats->events[0].trace_id, 18446744073709551615ull);
}

TEST(ObsJsonTest, ParseNodeStatsSkipsUnknownEventTypes) {
  std::string doc =
      "{\"node\":{\"label\":\"n\",\"health\":\"SERVING\",\"version\":1,"
      "\"unix_ms\":1},\"replication\":null,"
      "\"events\":[{\"seq\":1,\"unix_ms\":1,\"type\":\"FROM_THE_FUTURE\","
      "\"code\":\"OK\",\"trace_id\":\"0\",\"detail\":\"\"},"
      "{\"seq\":2,\"unix_ms\":2,\"type\":\"SLOW_REQUEST\",\"code\":\"OK\","
      "\"trace_id\":\"7\",\"detail\":\"d\"}],"
      "\"metrics\":{}}";
  auto stats = ClusterInspector::ParseNodeStats(0, doc);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->role.empty());  // replication: null
  ASSERT_EQ(stats->events.size(), 1u);
  EXPECT_EQ(stats->events[0].type, EventLog::Type::kSlowRequest);
}

TEST(ObsJsonTest, ParseNodeStatsRejectsGarbage) {
  EXPECT_FALSE(ClusterInspector::ParseNodeStats(0, "not json").ok());
  EXPECT_FALSE(ClusterInspector::ParseNodeStats(0, "[1,2,3]").ok());
}

TEST(ObsJsonTest, MergeChromeTraceJsonSplicesProcesses) {
  std::string a =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"client\"}},\n"
      "{\"name\":\"net_client.call\",\"ph\":\"X\",\"ts\":1.0,\"dur\":2.0,"
      "\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"9\"}}\n]}\n";
  std::string b =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"node-0\"}},\n"
      "{\"name\":\"net.request\",\"ph\":\"X\",\"ts\":1.2,\"dur\":1.5,"
      "\"pid\":2,\"tid\":4,\"args\":{\"trace_id\":\"9\"}}\n]}\n";
  std::string merged = ClusterInspector::MergeChromeTraceJson({a, b});

  // The merged document is itself valid JSON with every event present.
  auto parsed = ParseJson(merged);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 4u);
  // Both process tracks and both halves of the cross-process trace made
  // it through with their pids intact.
  EXPECT_EQ(events->array[0].GetString("name"), "process_name");
  EXPECT_EQ(events->array[2].GetU64("pid"), 2u);
  EXPECT_EQ(events->array[3].GetString("name"), "net.request");
}

TEST(ObsJsonTest, MergeChromeTraceJsonSkipsNonTraceInput) {
  std::string good =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":1}"
      "\n]}\n";
  std::string merged =
      ClusterInspector::MergeChromeTraceJson({"garbage", good, ""});
  auto parsed = ParseJson(merged);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("traceEvents")->array.size(), 1u);
}

}  // namespace
}  // namespace hdmap
