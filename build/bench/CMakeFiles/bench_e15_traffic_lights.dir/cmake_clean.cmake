file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_traffic_lights.dir/bench_e15_traffic_lights.cc.o"
  "CMakeFiles/bench_e15_traffic_lights.dir/bench_e15_traffic_lights.cc.o.d"
  "bench_e15_traffic_lights"
  "bench_e15_traffic_lights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_traffic_lights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
