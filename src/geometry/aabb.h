#ifndef HDMAP_GEOMETRY_AABB_H_
#define HDMAP_GEOMETRY_AABB_H_

#include <algorithm>
#include <limits>

#include "geometry/vec2.h"

namespace hdmap {

/// Axis-aligned bounding box. Default-constructed box is empty (inverted).
struct Aabb {
  Vec2 min{std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max()};
  Vec2 max{std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest()};

  constexpr Aabb() = default;
  constexpr Aabb(Vec2 min_in, Vec2 max_in) : min(min_in), max(max_in) {}

  static Aabb FromPoint(const Vec2& p, double half_extent = 0.0) {
    return Aabb({p.x - half_extent, p.y - half_extent},
                {p.x + half_extent, p.y + half_extent});
  }

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  void Extend(const Vec2& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  void Extend(const Aabb& o) {
    if (o.IsEmpty()) return;
    Extend(o.min);
    Extend(o.max);
  }

  /// Grows the box by `margin` on every side.
  Aabb Expanded(double margin) const {
    return Aabb({min.x - margin, min.y - margin},
                {max.x + margin, max.y + margin});
  }

  bool Contains(const Vec2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  bool Intersects(const Aabb& o) const {
    return !(o.min.x > max.x || o.max.x < min.x || o.min.y > max.y ||
             o.max.y < min.y);
  }

  Vec2 Center() const { return (min + max) * 0.5; }
  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }

  /// Euclidean distance from p to the box (0 when inside).
  double DistanceTo(const Vec2& p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return std::sqrt(dx * dx + dy * dy);
  }
};

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_AABB_H_
