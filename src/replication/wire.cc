#include "replication/wire.h"

#include "core/binary_io.h"

namespace hdmap {
namespace {

// Fixed-size part of an encoded ReplRecord (seq, term, kind, version,
// payload length prefix) — the CheckCount floor for batch decoding.
constexpr size_t kMinRecordWireSize = 8 + 8 + 1 + 8 + 4;
// x, y, length prefix of an encoded catch-up tile.
constexpr size_t kMinTileWireSize = 4 + 4 + 4;

void EncodeRecord(const ReplRecord& record, BufferWriter* out) {
  out->WriteU64(record.seq);
  out->WriteU64(record.term);
  out->WriteU8(static_cast<uint8_t>(record.kind));
  out->WriteU64(record.version);
  out->WriteString(record.payload);
}

Status DecodeRecord(BufferReader* reader, ReplRecord* out) {
  out->seq = reader->ReadU64();
  out->term = reader->ReadU64();
  uint8_t kind = reader->ReadU8();
  out->version = reader->ReadU64();
  out->payload = reader->ReadString();
  if (!reader->ok()) return reader->status();
  if (kind > static_cast<uint8_t>(ReplRecordKind::kPublish)) {
    return Status::DataLoss("replication record has unknown kind " +
                            std::to_string(kind));
  }
  out->kind = static_cast<ReplRecordKind>(kind);
  return Status::Ok();
}

}  // namespace

std::string EncodeShipBatch(const ReplShipBatch& batch) {
  BufferWriter out;
  out.WriteU64(batch.term);
  out.WriteU64(batch.leader_end_seq);
  out.WriteU32(static_cast<uint32_t>(batch.records.size()));
  for (const ReplRecord& record : batch.records) EncodeRecord(record, &out);
  return out.Release();
}

Result<ReplShipBatch> DecodeShipBatch(std::string_view payload) {
  BufferReader reader(payload);
  ReplShipBatch batch;
  batch.term = reader.ReadU64();
  batch.leader_end_seq = reader.ReadU64();
  uint32_t count = reader.ReadU32();
  if (!reader.CheckCount(count, kMinRecordWireSize)) return reader.status();
  batch.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ReplRecord record;
    Status status = DecodeRecord(&reader, &record);
    if (!status.ok()) return status;
    batch.records.push_back(std::move(record));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after replication batch");
  }
  return batch;
}

std::string EncodeAck(const ReplAck& ack) {
  BufferWriter out;
  out.WriteU64(ack.term);
  out.WriteU64(ack.next_seq);
  out.WriteU64(ack.version);
  out.WriteU8(ack.flags);
  return out.Release();
}

Result<ReplAck> DecodeAck(std::string_view payload) {
  BufferReader reader(payload);
  ReplAck ack;
  ack.term = reader.ReadU64();
  ack.next_seq = reader.ReadU64();
  ack.version = reader.ReadU64();
  ack.flags = reader.ReadU8();
  if (!reader.ok()) return reader.status();
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after replication ack");
  }
  if ((ack.flags & ~(kReplAckStaleTerm | kReplAckNeedCatchUp)) != 0) {
    return Status::DataLoss("replication ack has unknown flags " +
                            std::to_string(ack.flags));
  }
  return ack;
}

std::string EncodeCatchUp(const ReplCatchUp& snapshot) {
  BufferWriter out;
  out.WriteU64(snapshot.term);
  out.WriteU64(snapshot.resume_seq);
  out.WriteU64(snapshot.version);
  out.WriteI64(snapshot.published_unix_ms);
  out.WriteF64(snapshot.tile_size_m);
  out.WriteU32(static_cast<uint32_t>(snapshot.tiles.size()));
  for (const auto& [id, bytes] : snapshot.tiles) {
    out.WriteI32(id.x);
    out.WriteI32(id.y);
    out.WriteString(bytes);
  }
  return out.Release();
}

Result<ReplCatchUp> DecodeCatchUp(std::string_view payload) {
  BufferReader reader(payload);
  ReplCatchUp snapshot;
  snapshot.term = reader.ReadU64();
  snapshot.resume_seq = reader.ReadU64();
  snapshot.version = reader.ReadU64();
  snapshot.published_unix_ms = reader.ReadI64();
  snapshot.tile_size_m = reader.ReadF64();
  uint32_t count = reader.ReadU32();
  if (!reader.CheckCount(count, kMinTileWireSize)) return reader.status();
  snapshot.tiles.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TileId id;
    id.x = reader.ReadI32();
    id.y = reader.ReadI32();
    std::string bytes = reader.ReadString();
    if (!reader.ok()) return reader.status();
    snapshot.tiles.emplace_back(id, std::move(bytes));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after catch-up snapshot");
  }
  return snapshot;
}

}  // namespace hdmap
