#ifndef HDMAP_ATV_FACTORY_WORLD_H_
#define HDMAP_ATV_FACTORY_WORLD_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/hd_map.h"
#include "geometry/segment.h"

namespace hdmap {

/// The indoor smart-factory world for ATV experiments (Tas et al.
/// [10, 11]): walls and storage racks as occupancy obstacles, plus an
/// indoor HD map of safety/direction signs along the aisles.
struct FactoryWorld {
  std::vector<Segment> walls;  ///< Physical obstacles (incl. racks).
  HdMap sign_map;              ///< The "valid" indoor HD map (signs).
  Aabb extent;
  /// Aisle centerlines the ATV patrols.
  std::vector<LineString> aisles;
};

struct FactoryOptions {
  double width = 80.0;
  double depth = 50.0;
  int rack_rows = 3;
  double rack_length = 60.0;
  double rack_depth = 3.0;
  double aisle_width = 8.0;
  double sign_spacing = 12.0;
};

/// Generates the factory: perimeter walls, rack rows with aisles between
/// them, and safety signs mounted on the racks along each aisle.
Result<FactoryWorld> GenerateFactory(const FactoryOptions& options,
                                     Rng& rng);

/// Casts a ray from `origin` toward `direction` (unit) against the wall
/// segments; returns the hit distance, or `max_range` when nothing is
/// hit within range.
double CastRay(const std::vector<Segment>& walls, const Vec2& origin,
               const Vec2& direction, double max_range);

}  // namespace hdmap

#endif  // HDMAP_ATV_FACTORY_WORLD_H_
