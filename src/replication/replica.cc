#include "replication/replica.h"

#include <utility>

#include "core/serialization.h"
#include "net/protocol.h"

namespace hdmap {

namespace {

// "Very large" contact staleness before the first leader contact or
// reset — effectively infinite but safe to add/compare.
constexpr double kNeverContactedMs = 1e18;

}  // namespace

Replica::Replica(Options options) : opts_(std::move(options)) {
  if (opts_.metrics != nullptr) {
    records_applied_ = opts_.metrics->GetCounter("repl.records_applied");
    apply_failures_ = opts_.metrics->GetCounter("repl.apply_failures");
    stale_term_rejections_ =
        opts_.metrics->GetCounter("repl.stale_term_rejections");
    catchups_installed_ = opts_.metrics->GetCounter("repl.catchups_installed");
    need_catchup_acks_ = opts_.metrics->GetCounter("repl.need_catchup_acks");
  }
}

ReplicationHandler::Reply Replica::HandleReplication(
    const NetRequest& request) {
  if (partitioned_.load()) {
    Reply reply;
    reply.code = NetResponseCode::kError;
    reply.status = StatusCode::kInternal;
    return reply;
  }
  switch (request.type) {
    case NetRequestType::kReplicate:
      return HandleBatch(request);
    case NetRequestType::kCatchUp:
      return HandleCatchUp(request);
    default: {
      Reply reply;
      reply.code = NetResponseCode::kError;
      reply.status = StatusCode::kInvalidArgument;
      return reply;
    }
  }
}

ReplicationHandler::Reply Replica::HandleBatch(const NetRequest& request) {
  Result<ReplShipBatch> decoded = DecodeShipBatch(request.payload);
  if (!decoded.ok()) {
    if (apply_failures_ != nullptr) apply_failures_->Increment();
    Reply reply;
    reply.code = NetResponseCode::kError;
    reply.status = decoded.status().code();
    return reply;
  }
  ReplShipBatch batch = std::move(decoded.value());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t term = opts_.term->load(std::memory_order_acquire);
  if (batch.term < term) {
    if (stale_term_rejections_ != nullptr) stale_term_rejections_->Increment();
    return AckReply(MakeAckLocked(kReplAckStaleTerm));
  }
  if (batch.term > term) {
    // Fencing state only ever moves forward; the shipper may race us with
    // an equal-or-higher store, which is fine.
    uint64_t observed = term;
    while (observed < batch.term &&
           !opts_.term->compare_exchange_weak(observed, batch.term)) {
    }
    if (opts_.on_higher_term) opts_.on_higher_term(batch.term);
  }
  contacted_ = true;
  last_contact_ = std::chrono::steady_clock::now();

  if (!need_catchup_ && opts_.consume_resync && opts_.consume_resync()) {
    need_catchup_ = true;
  }
  if (need_catchup_) {
    if (need_catchup_acks_ != nullptr) need_catchup_acks_->Increment();
    return AckReply(MakeAckLocked(kReplAckNeedCatchUp));
  }

  uint8_t flags = 0;
  for (const ReplRecord& record : batch.records) {
    if (record.seq < next_seq_) continue;  // duplicate resend
    if (record.seq > next_seq_) break;     // gap; ack makes leader rewind
    if (opts_.faults != nullptr &&
        !opts_.faults->MaybeFail(kApplyFaultSite).ok()) {
      // Injected follower crash between records: everything applied so
      // far stays; the ack position makes the leader resend the rest.
      if (apply_failures_ != nullptr) apply_failures_->Increment();
      break;
    }
    if (record.kind == ReplRecordKind::kPatch) {
      Result<MapPatch> patch = DeserializePatch(record.payload);
      if (!patch.ok()) {
        if (apply_failures_ != nullptr) apply_failures_->Increment();
        break;
      }
      if (!opts_.service->StagePatch(std::move(patch.value())).ok()) {
        if (apply_failures_ != nullptr) apply_failures_->Increment();
        break;
      }
    } else {
      // Publish marker: only apply when it produces exactly the marker's
      // version — anything else means our history diverged from the
      // leader's (e.g. we are a deposed leader with local-only patches)
      // and must be repaired by snapshot, not papered over.
      if (opts_.service->version() + 1 != record.version) {
        flags |= kReplAckNeedCatchUp;
        need_catchup_ = true;
        if (need_catchup_acks_ != nullptr) need_catchup_acks_->Increment();
        break;
      }
      if (!opts_.service->Publish().ok() ||
          opts_.service->version() != record.version) {
        if (apply_failures_ != nullptr) apply_failures_->Increment();
        break;
      }
    }
    if (!opts_.log->AppendReplicated(record).ok()) {
      if (apply_failures_ != nullptr) apply_failures_->Increment();
      break;
    }
    ++next_seq_;
    if (records_applied_ != nullptr) records_applied_->Increment();
    if (record.kind == ReplRecordKind::kPublish && opts_.on_publish_applied) {
      opts_.on_publish_applied(record.seq);
    }
  }
  return AckReply(MakeAckLocked(flags));
}

ReplicationHandler::Reply Replica::HandleCatchUp(const NetRequest& request) {
  Result<ReplCatchUp> decoded = DecodeCatchUp(request.payload);
  if (!decoded.ok()) {
    if (apply_failures_ != nullptr) apply_failures_->Increment();
    Reply reply;
    reply.code = NetResponseCode::kError;
    reply.status = decoded.status().code();
    return reply;
  }
  ReplCatchUp snapshot = std::move(decoded.value());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t term = opts_.term->load(std::memory_order_acquire);
  if (snapshot.term < term) {
    if (stale_term_rejections_ != nullptr) stale_term_rejections_->Increment();
    return AckReply(MakeAckLocked(kReplAckStaleTerm));
  }
  if (snapshot.term > term) {
    uint64_t observed = term;
    while (observed < snapshot.term &&
           !opts_.term->compare_exchange_weak(observed, snapshot.term)) {
    }
    if (opts_.on_higher_term) opts_.on_higher_term(snapshot.term);
  }
  contacted_ = true;
  last_contact_ = std::chrono::steady_clock::now();

  uint64_t resume_seq = snapshot.resume_seq;
  Status installed = opts_.service->InstallReplicatedSnapshot(
      snapshot.version, snapshot.published_unix_ms, snapshot.tile_size_m,
      std::move(snapshot.tiles));
  if (!installed.ok()) {
    if (apply_failures_ != nullptr) apply_failures_->Increment();
    Reply reply;
    reply.code = NetResponseCode::kError;
    reply.status = installed.code();
    return reply;
  }
  next_seq_ = resume_seq + 1;
  opts_.log->ResetTo(next_seq_);
  need_catchup_ = false;
  if (catchups_installed_ != nullptr) catchups_installed_->Increment();
  if (opts_.on_catchup_installed) opts_.on_catchup_installed(resume_seq);
  return AckReply(MakeAckLocked(0));
}

ReplAck Replica::MakeAckLocked(uint8_t flags) const {
  ReplAck ack;
  ack.term = opts_.term->load(std::memory_order_acquire);
  ack.next_seq = next_seq_;
  ack.version = opts_.service->version();
  ack.flags = flags;
  return ack;
}

ReplicationHandler::Reply Replica::AckReply(const ReplAck& ack) const {
  Reply reply;
  reply.code = NetResponseCode::kOk;
  reply.status = StatusCode::kOk;
  reply.payload = EncodeAck(ack);
  return reply;
}

void Replica::FenceTerm(uint64_t term) {
  std::function<void(uint64_t)> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t observed = opts_.term->load(std::memory_order_acquire);
    if (observed >= term) return;
    while (observed < term &&
           !opts_.term->compare_exchange_weak(observed, term)) {
    }
    notify = opts_.on_higher_term;
  }
  // Outside mu_ (unlike OnShip's in-batch path) purely for symmetry with
  // the controller's call site; StepDown only takes the node write lock.
  if (notify) notify(term);
}

uint64_t Replica::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t Replica::applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

double Replica::MsSinceLeaderContact() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!contacted_) return kNeverContactedMs;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - last_contact_)
      .count();
}

void Replica::ResetContact() {
  std::lock_guard<std::mutex> lock(mu_);
  contacted_ = true;
  last_contact_ = std::chrono::steady_clock::now();
}

void Replica::ForceCatchUp() {
  std::lock_guard<std::mutex> lock(mu_);
  need_catchup_ = true;
}

}  // namespace hdmap
