#include "net/tile_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "common/trace.h"
#include "core/binary_io.h"
#include "core/serialization.h"
#include "core/tile_view.h"
#include "core/wire_frame.h"

namespace hdmap {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

uint32_t HeaderCrcAt(std::string_view buffer) {
  uint32_t crc = 0;
  std::memcpy(&crc, buffer.data() + 8, sizeof(crc));
  return crc;
}

/// Coalescing key: request type + args bytes. have_version is excluded —
/// only full fetches reach the coalescing map, and a full fetch's result
/// does not depend on what the client already holds.
std::string CoalesceKey(const NetRequest& request) {
  BufferWriter key;
  key.WriteU8(static_cast<uint8_t>(request.type));
  if (request.type == NetRequestType::kGetTile) {
    key.WriteI32(request.tile.x);
    key.WriteI32(request.tile.y);
  } else if (request.type == NetRequestType::kGetRegion) {
    key.WriteF64(request.box.min.x);
    key.WriteF64(request.box.min.y);
    key.WriteF64(request.box.max.x);
    key.WriteF64(request.box.max.y);
  }
  return key.Release();
}

}  // namespace

TileServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

TileServer::TileServer(const MapService& service, Options options)
    : service_(service),
      options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &service.metrics()),
      events_(options_.event_log_capacity) {
  requests_ = metrics_->GetCounter("net.requests");
  busy_rejected_ = metrics_->GetCounter("net.busy_rejected");
  coalesced_ = metrics_->GetCounter("net.coalesced");
  computations_ = metrics_->GetCounter("net.computations");
  not_modified_ = metrics_->GetCounter("net.not_modified");
  deltas_ = metrics_->GetCounter("net.deltas");
  malformed_ = metrics_->GetCounter("net.malformed_requests");
  accepted_ = metrics_->GetCounter("net.connections_accepted");
  conn_rejected_ = metrics_->GetCounter("net.connections_rejected");
  bytes_in_ = metrics_->GetCounter("net.bytes_in");
  bytes_out_ = metrics_->GetCounter("net.bytes_out");
  reaped_ = metrics_->GetCounter("net.connections_reaped");
  connections_gauge_ = metrics_->GetGauge("net.connections");
  latency_ = metrics_->GetLatency("net.request");
  metrics_->SetHelp("net.requests", "Requests admitted by the tile server");
  metrics_->SetHelp("net.busy_rejected",
                    "Requests shed with a BUSY response by admission control");
  metrics_->SetHelp("net.coalesced",
                    "Requests served as waiters on another request's "
                    "in-flight computation");
  metrics_->SetHelp("net.computations",
                    "Full-fetch payload computations actually run (admitted "
                    "full fetches minus coalesced waiters)");
  metrics_->SetHelp("net.request",
                    "Tile-server request latency, admission to response");
  metrics_->SetHelp("net.connections_reaped",
                    "Connections closed by the idle-timeout reaper");
}

TileServer::~TileServer() { Stop(); }

Status TileServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("TileServer already started");
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Internal(ErrnoMessage("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 512) < 0) {
    Status err = Status::Internal(ErrnoMessage("bind/listen"));
    Stop();
    return err;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_.store(ntohs(addr.sin_port));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status err = Status::Internal(ErrnoMessage("epoll_create1/eventfd"));
    Stop();
    return err;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::Ok();
}

void TileServer::Stop() {
  running_.store(false);
  if (io_thread_.joinable()) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    io_thread_.join();
  }
  // Drains every admitted request (the pool destructor finishes its
  // queue before joining), so responses already owed get written.
  workers_.reset();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.clear();  // Destructors close the sockets.
  }
  if (connections_gauge_ != nullptr) connections_gauge_->Set(0);
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

size_t TileServer::NumConnections() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

void TileServer::IoLoop() {
  epoll_event events[64];
  // The reaper rides the epoll tick; sweep at ~half the timeout so a
  // connection is reaped within ~1.5x the configured idle window.
  auto last_sweep = std::chrono::steady_clock::now();
  int wait_ms = 500;
  if (options_.idle_timeout_s > 0) {
    wait_ms = std::min(
        wait_ms,
        std::max(1, static_cast<int>(options_.idle_timeout_s * 500.0)));
  }
  while (running_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (options_.idle_timeout_s > 0) {
      auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_sweep).count() >=
          options_.idle_timeout_s / 2.0) {
        last_sweep = now;
        ReapIdleConnections();
      }
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(connections_mu_);
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        conn = it->second;
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 ||
          !HandleReadable(conn)) {
        RemoveConnection(fd);
      }
    }
  }
}

void TileServer::HandleAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient error): try next wakeup.
    size_t count;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      count = connections_.size();
    }
    if (count >= options_.max_connections) {
      // No framing has been established yet, so there is no way to send
      // a typed BUSY; an immediate close is the whole signal.
      ::close(fd);
      conn_rejected_->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) continue;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.emplace(fd, std::move(conn));
      connections_gauge_->Set(static_cast<double>(connections_.size()));
    }
    accepted_->Increment();
  }
}

void TileServer::ReapIdleConnections() {
  // IO-thread only: last_activity and the victim scan race nothing. A
  // connection with in-flight requests is never reaped — a worker still
  // owes it a response, however long the computation takes.
  auto now = std::chrono::steady_clock::now();
  std::vector<int> victims;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& [fd, conn] : connections_) {
      if (conn->inflight.load(std::memory_order_relaxed) > 0) continue;
      double idle =
          std::chrono::duration<double>(now - conn->last_activity).count();
      if (idle > options_.idle_timeout_s) victims.push_back(fd);
    }
  }
  for (int fd : victims) {
    reaped_->Increment();
    events_.Append(EventLog::Type::kConnectionReaped, 0,
                   "reaped connection fd " + std::to_string(fd) +
                       " idle past " +
                       std::to_string(options_.idle_timeout_s) + "s");
    RemoveConnection(fd);
  }
}

bool TileServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  conn->last_activity = std::chrono::steady_clock::now();
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_->Increment(static_cast<uint64_t>(n));
      conn->read_buffer.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // A replication-enabled server must accept shipped batches and
  // catch-up snapshots, which carry map content; a plain tile server
  // keeps the tiny fixed-shape cap.
  const size_t max_body = options_.replication != nullptr
                              ? kMaxNetReplicationBody
                              : kMaxNetRequestBody;
  for (;;) {
    size_t frame_size = 0;
    std::string_view body;
    FrameParse parse = ExtractFrame(conn->read_buffer, kNetRequestMagic,
                                    max_body, &frame_size, &body);
    if (parse == FrameParse::kNeedMore) break;
    if (parse == FrameParse::kViolation) {
      // Bad magic / absurd length: the byte stream is not this protocol
      // (or framing sync is lost for good). Nothing to resynchronize on.
      malformed_->Increment();
      return false;
    }
    uint32_t header_crc = HeaderCrcAt(conn->read_buffer);
    std::string body_bytes(body);
    if (options_.fault_injector != nullptr) {
      std::string corrupted;
      if (options_.fault_injector->MaybeCorrupt(kRecvFaultSite, body_bytes,
                                                &corrupted)) {
        body_bytes = std::move(corrupted);
      }
    }
    HandleFrame(conn, body_bytes, header_crc);
    conn->read_buffer.erase(0, frame_size);
  }
  return !conn->closed.load();
}

void TileServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                             std::string_view body, uint32_t header_crc) {
  Result<NetRequest> decoded = DecodeRequestBody(body, header_crc);
  if (!decoded.ok()) {
    // The frame boundary was intact (magic + sane length), so the stream
    // stays parseable: answer with a typed error and keep the
    // connection. request_id 0 — the body bytes cannot be trusted.
    malformed_->Increment();
    WriteFrame(conn, EncodeResponseFrame(
                         NetResponseCode::kError, decoded.status().code(), 0,
                         service_.version(), decoded.status().message()));
    return;
  }
  const NetRequest& request = decoded.value();
  // Admission control. Both checks and the increments run only on the IO
  // thread, so the caps are exact; decrements come from workers.
  // kStats is exempt: a scrape must still answer during a kBusy storm —
  // overload is exactly when the introspection plane earns its keep. It
  // still counts against pending_/inflight below, so a scrape cannot
  // leak accounting, and its response is tiny and computed without
  // touching the coalescing or snapshot paths.
  const char* shed_reason = nullptr;
  if (request.type == NetRequestType::kStats) {
    // Never shed.
  } else if (pending_.load(std::memory_order_relaxed) >=
             options_.max_pending_requests) {
    shed_reason = "request queue full";
  } else if (conn->inflight.load(std::memory_order_relaxed) >=
             options_.max_inflight_per_connection) {
    shed_reason = "connection in-flight cap reached";
  }
  if (shed_reason != nullptr) {
    busy_rejected_->Increment();
    events_.Append(EventLog::Type::kBusyRejected, 0,
                   std::string(shed_reason) + " (request_id " +
                       std::to_string(request.request_id) + ")");
    WriteFrame(conn,
               EncodeResponseFrame(NetResponseCode::kBusy, StatusCode::kOk,
                                   request.request_id, service_.version(),
                                   ""));
    return;
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  auto admitted = std::chrono::steady_clock::now();
  workers_->Submit([this, conn, request, admitted] {
    ExecuteRequest(conn, request, admitted);
  });
}

void TileServer::ExecuteRequest(
    std::shared_ptr<Connection> conn, NetRequest request,
    std::chrono::steady_clock::time_point admitted) {
  // Adopt the client's propagated trace context (when tracing is on), so
  // the root "net.request" span parents under the caller's span and the
  // whole RPC renders as one tree across the process boundary.
  TraceRecorder* recorder =
      options_.trace != nullptr ? options_.trace : &TraceRecorder::Global();
  std::optional<TraceContextScope> adopted;
  if (request.trace_id != 0 && recorder->enabled()) {
    adopted.emplace(TraceContext{request.trace_id, request.parent_span_id,
                                 request.trace_sampled});
  }
  TraceSpan span("net.request", TraceSpan::kRoot, options_.trace);
  requests_->Increment();
  if (request.type == NetRequestType::kPing) {
    FinishRequest(conn, NetResponseCode::kOk, StatusCode::kOk,
                  request.request_id, service_.version(), "", admitted);
    return;
  }
  if (request.type == NetRequestType::kStats) {
    FinishRequest(conn, NetResponseCode::kOk, StatusCode::kOk,
                  request.request_id, service_.version(),
                  BuildStatsPayload(request), admitted);
    return;
  }
  if (request.type == NetRequestType::kReplicate ||
      request.type == NetRequestType::kCatchUp) {
    if (options_.replication == nullptr) {
      span.SetStatus(StatusCode::kUnimplemented);
      FinishRequest(conn, NetResponseCode::kError, StatusCode::kUnimplemented,
                    request.request_id, service_.version(),
                    "no replication handler configured", admitted);
      return;
    }
    ReplicationHandler::Reply reply =
        options_.replication->HandleReplication(request);
    if (reply.status != StatusCode::kOk) span.SetStatus(reply.status);
    FinishRequest(conn, reply.code, reply.status, request.request_id,
                  service_.version(), reply.payload, admitted);
    return;
  }
  auto snap = service_.snapshot();
  if (snap == nullptr) {
    span.SetStatus(StatusCode::kFailedPrecondition);
    FinishRequest(conn, NetResponseCode::kError,
                  StatusCode::kFailedPrecondition, request.request_id, 0,
                  "service not initialized", admitted);
    return;
  }
  // Conditional fetch: cheap version probe before any computation.
  if (request.have_version != 0) {
    if (request.have_version == snap->version) {
      not_modified_->Increment();
      FinishRequest(conn, NetResponseCode::kNotModified, StatusCode::kOk,
                    request.request_id, snap->version, "", admitted);
      return;
    }
    if (request.type == NetRequestType::kGetRegion &&
        request.have_version < snap->version) {
      // The delta chain is map-wide, so only region clients (who hold
      // map-level state) can apply it; a stale tile fetch goes full.
      uint64_t reached = 0;
      Result<std::vector<std::string>> delta =
          service_.PatchesSince(request.have_version, &reached);
      if (delta.ok()) {
        deltas_->Increment();
        FinishRequest(conn, NetResponseCode::kDelta, StatusCode::kOk,
                      request.request_id, reached,
                      EncodeDeltaPayload(delta.value()), admitted);
        return;
      }
      // History fell short (or the chain is broken): full fetch below.
    }
  }
  // Full fetch, coalesced: identical concurrent requests share one
  // computation and every caller gets byte-identical payload bytes.
  std::string key = CoalesceKey(request);
  {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      it->second->waiters.push_back(
          Waiter{conn, request.request_id, admitted});
      coalesced_->Increment();
      return;  // The owner writes this response.
    }
    inflight_.emplace(key, std::make_shared<Computation>());
  }
  uint64_t version = snap->version;
  auto [code, status, payload] = ComputeFull(request, &version);
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    auto it = inflight_.find(key);
    waiters = std::move(it->second->waiters);
    inflight_.erase(it);
    // After the erase (same critical section as waiter joins), no new
    // waiter can attach to this computation — late duplicates start
    // their own.
  }
  if (status != StatusCode::kOk) span.SetStatus(status);
  FinishRequest(conn, code, status, request.request_id, version, payload,
                admitted);
  for (const Waiter& waiter : waiters) {
    FinishRequest(waiter.conn, code, status, waiter.request_id, version,
                  payload, waiter.admitted);
  }
}

std::tuple<NetResponseCode, StatusCode, std::string> TileServer::ComputeFull(
    const NetRequest& request, uint64_t* version) {
  computations_->Increment();
  if (options_.handler_delay_ms_for_test != 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.handler_delay_ms_for_test));
  }
  auto snap = service_.snapshot();
  *version = snap->version;
  if (request.type == NetRequestType::kGetTile) {
    // Verbatim blob from the snapshot's tile store: zero re-encode, and
    // the payload's embedded frame CRC travels with it. RawTileBytes
    // pins the blob, so the bytes stay valid while the response frame
    // is assembled even if a publish swaps the store underneath.
    Result<PinnedBytes> bytes = snap->tiles.RawTileBytes(request.tile);
    if (!bytes.ok()) {
      return {NetResponseCode::kError, StatusCode::kNotFound,
              "tile (" + std::to_string(request.tile.x) + ", " +
                  std::to_string(request.tile.y) + ") not present"};
    }
    return {NetResponseCode::kOk, StatusCode::kOk,
            std::string(bytes->view())};
  }
  // Region: stitch (through the service, so degraded-mode policy and
  // map_service.* accounting apply; its endpoint span nests under
  // net.request) and serialize once, in the snapshot's own tile format.
  // Either encoding is framed, so the client decodes and
  // integrity-checks it like a tile blob (DeserializeMap dispatches on
  // the payload magic).
  Result<HdMap> region = service_.GetRegion(request.box);
  if (!region.ok()) {
    return {NetResponseCode::kError, region.status().code(),
            region.status().message()};
  }
  TraceSpan serialize_span("net.serialize_region", options_.trace);
  std::string payload = snap->tiles.format() == TileFormat::kFlatV3
                            ? EncodeTileV3(*region)
                            : SerializeMap(*region);
  return {NetResponseCode::kOk, StatusCode::kOk, std::move(payload)};
}

std::string TileServer::BuildStatsPayload(const NetRequest& request) const {
  if (request.stats_format == NetStatsFormat::kPrometheus) {
    return metrics_->RenderPrometheus();
  }
  // Node-status JSON: {"node":{...},"replication":...,"events":[...],
  // "metrics":{...}} — the document ClusterInspector polls. max_events
  // bounds the merged event array (the ring caps each source already;
  // the clamp guards a hostile request from inflating the response).
  size_t max_events = std::min<uint32_t>(request.stats_max_events, 1024);
  std::string out = "{\"node\":{\"label\":\"";
  out += options_.stats_label.empty() ? "hdmap" : options_.stats_label;
  out += "\",\"health\":\"";
  out += ServiceHealthToString(service_.Health());
  char buf[96];
  int64_t unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::snprintf(buf, sizeof(buf),
                "\",\"version\":%" PRIu64 ",\"unix_ms\":%" PRId64 "},",
                service_.version(), unix_ms);
  out += buf;
  out += "\"replication\":";
  out += options_.replication_status_json != nullptr
             ? options_.replication_status_json()
             : "null";
  // Merge the three event sources (server edge, service, node extras)
  // newest-first so a scraper sees one timeline per node.
  std::vector<EventLog::Event> events = events_.Recent(max_events);
  for (EventLog::Event& e : service_.RecentEvents(max_events)) {
    events.push_back(std::move(e));
  }
  if (options_.extra_events != nullptr) {
    for (EventLog::Event& e : options_.extra_events(max_events)) {
      events.push_back(std::move(e));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const EventLog::Event& a, const EventLog::Event& b) {
              if (a.unix_ms != b.unix_ms) return a.unix_ms > b.unix_ms;
              return a.seq > b.seq;
            });
  if (events.size() > max_events) events.resize(max_events);
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ",";
    EventLog::AppendJson(events[i], &out);
  }
  out += "],\"metrics\":";
  out += metrics_->RenderJson();
  // RenderJson ends with a newline; keep the document single-trailing.
  while (!out.empty() && out.back() == '\n') out.pop_back();
  out += "}\n";
  return out;
}

void TileServer::FinishRequest(
    const std::shared_ptr<Connection>& conn, NetResponseCode code,
    StatusCode status, uint64_t request_id, uint64_t version,
    std::string_view payload,
    std::chrono::steady_clock::time_point admitted) {
  WriteFrame(conn,
             EncodeResponseFrame(code, status, request_id, version, payload));
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - admitted)
                       .count();
  latency_->Record(elapsed);
  if (options_.slow_request_threshold_s > 0 &&
      elapsed > options_.slow_request_threshold_s) {
    events_.Append(EventLog::Type::kSlowRequest, CurrentTraceId(),
                   "net request_id " + std::to_string(request_id) + " took " +
                       std::to_string(elapsed) + "s");
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  conn->inflight.fetch_sub(1, std::memory_order_relaxed);
}

void TileServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                            std::string_view frame) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_relaxed)) return;
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(conn->fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) > 0) continue;
      // A peer that stays unwritable for seconds is gone or wedged; a
      // serving thread must not be parked on it indefinitely.
      conn->closed.store(true, std::memory_order_relaxed);
      return;
    }
    conn->closed.store(true, std::memory_order_relaxed);  // EPIPE etc.
    return;
  }
  bytes_out_->Increment(frame.size());
}

void TileServer::RemoveConnection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    conn = std::move(it->second);
    connections_.erase(it);
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
  // Suppress further writes; the fd itself stays open until the last
  // worker holding the Connection drops it, so a concurrent write can
  // never hit a reused descriptor.
  conn->closed.store(true, std::memory_order_relaxed);
}

// --- NetClient ---

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::Internal(ErrnoMessage("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Status::Internal(ErrnoMessage("connect"));
    Close();
    return err;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status NetClient::Send(const NetRequest& request) {
  // The choke point for trace propagation: every wrapper, CallWithRetry
  // attempt, and replication exchange routes through here, so an active
  // ambient context rides along on every frame. Explicit trace fields on
  // the request win (a relay forwarding someone else's context).
  TraceContext ctx;
  ctx.trace_id = request.trace_id;
  ctx.parent_span_id = request.parent_span_id;
  ctx.sampled = request.trace_sampled;
  if (propagate_trace_ && !ctx.active()) ctx = CurrentTraceContext();
  return SendRaw(EncodeRequestFrame(request, ctx));
}

Status NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(ErrnoMessage("send"));
  }
  return Status::Ok();
}

Result<NetResponse> NetClient::ReadResponse(uint32_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  char buf[65536];
  for (;;) {
    size_t frame_size = 0;
    std::string_view body;
    FrameParse parse =
        ExtractFrame(read_buffer_, kNetResponseMagic, kMaxNetResponseBody,
                     &frame_size, &body);
    if (parse == FrameParse::kViolation) {
      return Status::DataLoss("response framing violated; closing");
    }
    if (parse == FrameParse::kFrame) {
      Result<NetResponse> response =
          DecodeResponseBody(body, HeaderCrcAt(read_buffer_));
      read_buffer_.erase(0, frame_size);
      return response;
    }
    if (timeout_ms > 0) {
      int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count());
      if (remaining <= 0) {
        return Status::OutOfRange("response wait exceeded " +
                                  std::to_string(timeout_ms) + "ms");
      }
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, remaining);
      if (ready < 0 && errno != EINTR) {
        return Status::Internal(ErrnoMessage("poll"));
      }
      if (ready <= 0) continue;  // Timeout re-checked above; EINTR retried.
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      read_buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::Internal("connection closed by server");
    return Status::Internal(ErrnoMessage("recv"));
  }
}

Result<NetResponse> NetClient::Call(const NetRequest& request) {
  // Root span for the end-to-end RPC (joins an enclosing trace as a
  // child when one is active); Send picks it up from the ambient
  // context, so the server's spans parent under this one.
  TraceSpan span("net_client.call", TraceSpan::kRoot);
  auto started = std::chrono::steady_clock::now();
  Status sent = Send(request);
  if (!sent.ok()) {
    span.SetStatus(sent.code(), /*force=*/false);
    return sent;
  }
  Result<NetResponse> response = ReadResponse();
  if (!response.ok()) span.SetStatus(response.status().code(), /*force=*/false);
  CheckRpcBudget(&span, "call", started);
  return response;
}

void NetClient::CheckRpcBudget(
    TraceSpan* span, const char* what,
    std::chrono::steady_clock::time_point started) {
  if (slow_rpc_budget_s_ <= 0 || watchdog_events_ == nullptr) return;
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (elapsed <= slow_rpc_budget_s_) return;
  // Budget blown: force the span into the ring (the cross-node trace id
  // must survive even unsampled) and leave a joinable event.
  span->ForceRecord();
  watchdog_events_->Append(
      EventLog::Type::kSlowRequest, span->trace_id(),
      std::string("net_client ") + what + " took " + std::to_string(elapsed) +
          "s against a " + std::to_string(slow_rpc_budget_s_) + "s budget");
}

void NetClient::set_retry_options(RetryOptions options) {
  retry_ = options;
  jitter_state_ = retry_.jitter_seed != 0 ? retry_.jitter_seed : 1;
  if (retry_.metrics != nullptr) {
    attempts_counter_ = retry_.metrics->GetCounter("net_client.attempts");
    retries_counter_ = retry_.metrics->GetCounter("net_client.retries");
    backoff_ms_counter_ =
        retry_.metrics->GetCounter("net_client.backoff_ms_total");
    deadline_exceeded_counter_ =
        retry_.metrics->GetCounter("net_client.deadline_exceeded");
    retry_.metrics->SetHelp("net_client.attempts",
                            "Individual request attempts, retries included");
    retry_.metrics->SetHelp(
        "net_client.backoff_ms_total",
        "Total milliseconds this client spent backing off between retries");
  } else {
    attempts_counter_ = nullptr;
    retries_counter_ = nullptr;
    backoff_ms_counter_ = nullptr;
    deadline_exceeded_counter_ = nullptr;
  }
}

uint32_t NetClient::RemainingMs(std::chrono::steady_clock::time_point deadline,
                                bool* expired) const {
  if (retry_.deadline_ms == 0) {
    *expired = false;
    return 0;  // No deadline: unbounded waits.
  }
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  *expired = left <= 0;
  return left <= 0 ? 1 : static_cast<uint32_t>(left);
}

Result<NetResponse> NetClient::CallWithRetry(const NetRequest& request) {
  // One span across the whole retry loop: every attempt's frame carries
  // this context, so a retried request still renders as one RPC (its
  // server-side net.request spans all parent here).
  TraceSpan span("net_client.call", TraceSpan::kRoot);
  auto started = std::chrono::steady_clock::now();
  auto deadline = started + std::chrono::milliseconds(retry_.deadline_ms);
  Result<NetResponse> last = Status::Internal("no attempt ran");
  int attempts = std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    bool expired = false;
    uint32_t remaining = RemainingMs(deadline, &expired);
    if (expired) {
      if (deadline_exceeded_counter_ != nullptr) {
        deadline_exceeded_counter_->Increment();
      }
      CheckRpcBudget(&span, "call_with_retry", started);
      return last;
    }
    if (attempt > 0) {
      // Capped exponential backoff with jitter in [0.5, 1.0): retry k
      // waits up to initial * 2^(k-1), never beyond the cap or the
      // deadline. xorshift64 keeps the sequence deterministic per seed.
      uint64_t cap = std::min<uint64_t>(
          retry_.max_backoff_ms,
          static_cast<uint64_t>(retry_.initial_backoff_ms) << (attempt - 1));
      jitter_state_ ^= jitter_state_ << 13;
      jitter_state_ ^= jitter_state_ >> 7;
      jitter_state_ ^= jitter_state_ << 17;
      uint64_t wait_ms = cap - (cap / 2 > 0 ? jitter_state_ % (cap / 2) : 0);
      if (retry_.deadline_ms > 0 && wait_ms >= remaining) wait_ms = remaining;
      if (wait_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
        if (backoff_ms_counter_ != nullptr) {
          backoff_ms_counter_->Increment(wait_ms);
        }
      }
      if (retries_counter_ != nullptr) retries_counter_->Increment();
      remaining = RemainingMs(deadline, &expired);
      if (expired) {
        if (deadline_exceeded_counter_ != nullptr) {
          deadline_exceeded_counter_->Increment();
        }
        CheckRpcBudget(&span, "call_with_retry", started);
        return last;
      }
    }
    if (attempts_counter_ != nullptr) attempts_counter_->Increment();
    if (fd_ < 0) {
      if (host_.empty()) return Status::FailedPrecondition("never connected");
      Status connected = Connect(host_, port_);
      if (!connected.ok()) {
        last = connected;  // Transient connect failure: retry.
        continue;
      }
    }
    Status sent = Send(request);
    if (!sent.ok()) {
      last = sent;
      Close();  // The stream may hold a half-written frame.
      continue;
    }
    Result<NetResponse> response = ReadResponse(remaining);
    if (!response.ok()) {
      last = std::move(response);
      // IO failure or response timeout: the framing position is unknown,
      // so the connection cannot be reused.
      Close();
      continue;
    }
    if (response->code == NetResponseCode::kBusy) {
      // Typed backpressure: the connection is fine, only the server is
      // loaded; back off without reconnecting.
      last = std::move(response);
      continue;
    }
    CheckRpcBudget(&span, "call_with_retry", started);
    return response;
  }
  CheckRpcBudget(&span, "call_with_retry", started);
  return last;
}

Result<NetResponse> NetClient::Ping() {
  NetRequest request;
  request.type = NetRequestType::kPing;
  request.request_id = next_request_id_++;
  return Call(request);
}

Result<NetResponse> NetClient::GetTile(const TileId& id,
                                       uint64_t have_version) {
  NetRequest request;
  request.type = NetRequestType::kGetTile;
  request.request_id = next_request_id_++;
  request.have_version = have_version;
  request.tile = id;
  return Call(request);
}

Result<NetResponse> NetClient::GetRegion(const Aabb& box,
                                         uint64_t have_version) {
  NetRequest request;
  request.type = NetRequestType::kGetRegion;
  request.request_id = next_request_id_++;
  request.have_version = have_version;
  request.box = box;
  return Call(request);
}

Result<NetResponse> NetClient::FetchStats(NetStatsFormat format,
                                          uint32_t max_events) {
  NetRequest request;
  request.type = NetRequestType::kStats;
  request.request_id = next_request_id_++;
  request.stats_format = format;
  request.stats_max_events = max_events;
  return Call(request);
}

}  // namespace hdmap
