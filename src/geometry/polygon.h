#ifndef HDMAP_GEOMETRY_POLYGON_H_
#define HDMAP_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Simple polygon (implicitly closed: last vertex connects to first).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Vec2>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area (>0 for counter-clockwise winding).
  double SignedArea() const;
  double Area() const;
  Vec2 Centroid() const;

  /// Even-odd (crossing-number) containment test; boundary points count
  /// as inside.
  bool Contains(const Vec2& p) const;

  /// Distance from p to the polygon boundary (0 only on the boundary).
  double BoundaryDistanceTo(const Vec2& p) const;

  Aabb BoundingBox() const;

 private:
  std::vector<Vec2> vertices_;
};

/// Convex hull (Andrew's monotone chain); returns CCW hull vertices.
Polygon ConvexHull(std::vector<Vec2> points);

}  // namespace hdmap

#endif  // HDMAP_GEOMETRY_POLYGON_H_
