#include "sim/change_injector.h"

#include <algorithm>
#include <vector>

namespace hdmap {

std::vector<ChangeEvent> InjectChanges(const ChangeInjectorOptions& options,
                                       HdMap* world, Rng& rng) {
  std::vector<ChangeEvent> events;

  // Find the largest id in use so added elements do not collide.
  IdAllocator ids;
  for (const auto& [id, lm] : world->landmarks()) ids.ReserveThrough(id);
  for (const auto& [id, lf] : world->line_features()) ids.ReserveThrough(id);
  for (const auto& [id, ll] : world->lanelets()) ids.ReserveThrough(id);
  for (const auto& [id, af] : world->area_features()) ids.ReserveThrough(id);
  for (const auto& [id, re] : world->regulatory_elements()) {
    ids.ReserveThrough(id);
  }
  for (const auto& [id, b] : world->lane_bundles()) ids.ReserveThrough(id);
  for (const auto& [id, n] : world->map_nodes()) ids.ReserveThrough(id);

  // Snapshot landmark ids (we mutate while iterating otherwise).
  std::vector<ElementId> landmark_ids;
  landmark_ids.reserve(world->landmarks().size());
  for (const auto& [id, lm] : world->landmarks()) landmark_ids.push_back(id);

  for (ElementId id : landmark_ids) {
    const Landmark* lm = world->FindLandmark(id);
    if (lm == nullptr) continue;
    double u = rng.Uniform();
    if (u < options.landmark_remove_prob) {
      ChangeEvent ev;
      ev.type = ChangeType::kLandmarkRemoved;
      ev.element_id = id;
      ev.old_position = lm->position;
      (void)world->RemoveLandmark(id);
      events.push_back(std::move(ev));
    } else if (u < options.landmark_remove_prob +
                       options.landmark_move_prob) {
      ChangeEvent ev;
      ev.type = ChangeType::kLandmarkMoved;
      ev.element_id = id;
      ev.old_position = lm->position;
      ev.new_position =
          lm->position + Vec3{rng.Normal(0.0, options.move_sigma),
                              rng.Normal(0.0, options.move_sigma), 0.0};
      (void)world->MoveLandmark(id, ev.new_position);
      events.push_back(std::move(ev));
    } else if (u < options.landmark_remove_prob +
                       options.landmark_move_prob +
                       options.landmark_add_prob) {
      // Add a brand-new sign near this one (new installation).
      Landmark added = *lm;
      added.id = ids.Next();
      added.subtype = "new_installation";
      added.position =
          lm->position + Vec3{rng.Normal(0.0, 8.0), rng.Normal(0.0, 8.0),
                              0.0};
      ChangeEvent ev;
      ev.type = ChangeType::kLandmarkAdded;
      ev.element_id = added.id;
      ev.new_position = added.position;
      if (world->AddLandmark(std::move(added)).ok()) {
        events.push_back(std::move(ev));
      }
    }
  }

  // Construction sites: pick random lane-marking features and shift a
  // window of their geometry laterally (lane re-painting / barriers).
  if (options.construction_sites > 0) {
    std::vector<ElementId> marking_ids;
    for (const auto& [id, lf] : world->line_features()) {
      if ((lf.type == LineType::kSolidLaneMarking ||
           lf.type == LineType::kDashedLaneMarking) &&
          lf.geometry.Length() > options.construction_length / 2) {
        marking_ids.push_back(id);
      }
    }
    for (int site = 0;
         site < options.construction_sites && !marking_ids.empty(); ++site) {
      int pick = rng.UniformInt(0, static_cast<int>(marking_ids.size()) - 1);
      ElementId line_id = marking_ids[static_cast<size_t>(pick)];
      marking_ids.erase(marking_ids.begin() + pick);
      const LineFeature* lf = world->FindLineFeature(line_id);
      if (lf == nullptr) continue;
      LineFeature shifted = *lf;
      double len = shifted.geometry.Length();
      double window = std::min(options.construction_length, len);
      double start = rng.Uniform(0.0, len - window);
      // Rebuild geometry with a lateral shift inside [start, start+window],
      // ramped at the edges.
      std::vector<Vec2> pts;
      const LineString& g = lf->geometry;
      for (size_t i = 0; i < g.size(); ++i) {
        double s = g.ArcLengthAt(i);
        double shift = 0.0;
        if (s >= start && s <= start + window) {
          double rel = (s - start) / window;           // 0..1
          double ramp = std::min(rel, 1.0 - rel) * 4.0;  // Trapezoid.
          shift = options.construction_shift * std::min(1.0, ramp);
        }
        Vec2 normal = g.TangentAt(s).Perp();
        pts.push_back(g[i] + normal * shift);
      }
      shifted.geometry = LineString(std::move(pts));
      (void)world->ReplaceLineFeature(std::move(shifted));

      ChangeEvent ev;
      ev.type = ChangeType::kConstructionSite;
      ev.element_id = line_id;
      ev.affected_lines.push_back(line_id);
      events.push_back(std::move(ev));
    }
  }
  return events;
}

}  // namespace hdmap
