#ifndef HDMAP_LOCALIZATION_RASTER_LOCALIZER_H_
#define HDMAP_LOCALIZATION_RASTER_LOCALIZER_H_

#include "core/raster_layer.h"
#include "localization/particle_filter.h"

namespace hdmap {

/// Builds the local semantic observation patch a perception front-end
/// would produce at `true_pose` in `world_raster`: samples the world
/// raster in the vehicle frame over a window, with per-cell dropout and
/// bit noise. Scoring substitute for the stereo front-end of HDMI-Loc.
SemanticRaster BuildObservedPatch(const SemanticRaster& world_raster,
                                  const Pose2& true_pose,
                                  double half_extent, double resolution,
                                  double dropout_prob, double noise_prob,
                                  Rng& rng);

/// Bitwise raster particle-filter localizer (HDMI-Loc [23]): the vector
/// map is pre-rendered into an 8-bit semantic image; localization matches
/// observed patches against it with the bitwise score, inside a particle
/// filter. Memory-efficient: the raster replaces the vector map online.
class RasterLocalizer {
 public:
  struct Options {
    ParticleFilter::Options filter;
    /// Patch scored per update (vehicle frame), meters.
    double patch_half_extent = 12.0;
    /// Likelihood temperature as a fraction of the observed cell count:
    /// weight = exp((score - best) / (temperature * cells)). Smaller is
    /// sharper; must be small enough that periodic road texture (dashed
    /// markings) cannot alias the belief between modes.
    double score_temperature = 0.02;
  };

  RasterLocalizer(const SemanticRaster* map_raster, const Options& options);

  void Init(const Pose2& initial, double position_spread,
            double heading_spread, Rng& rng);
  void Predict(double distance, double heading_change, Rng& rng);
  /// Scores an observed patch (vehicle-frame cells) against the map.
  void Update(const SemanticRaster& observed_patch, Rng& rng);

  Pose2 Estimate() const { return filter_.Estimate(); }
  double PositionSpread() const { return filter_.PositionSpread(); }

 private:
  const SemanticRaster* map_raster_;
  Options options_;
  ParticleFilter filter_;
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_RASTER_LOCALIZER_H_
