# Empty compiler generated dependencies file for hdmap_perception.
# This may be replaced when dependencies are built.
