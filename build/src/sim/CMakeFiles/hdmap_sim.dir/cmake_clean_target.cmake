file(REMOVE_RECURSE
  "libhdmap_sim.a"
)
