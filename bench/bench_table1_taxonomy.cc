// T1 — Table I of the paper: the taxonomy of HD-map techniques.
// Regenerates the table with the module implementing each row and
// smoke-runs one representative operation per sub-area on a live map.

#include <cstdio>

#include "atv/factory_world.h"
#include "atv/sign_update.h"
#include "bench/bench_util.h"
#include "core/raster_layer.h"
#include "core/serialization.h"
#include "creation/crowd_mapper.h"
#include "localization/marking_localizer.h"
#include "maintenance/slamcu.h"
#include "perception/object_detector.h"
#include "planning/route_planner.h"
#include "pose/pose_estimator.h"
#include "sim/change_injector.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"

namespace hdmap {
namespace {

void Row(const char* category, const char* subarea, const char* refs,
         const char* module, const char* smoke) {
  std::printf("| %-13s | %-27s | %-22s | %-26s | %s\n", category, subarea,
              refs, module, smoke);
}

int Run() {
  bench::PrintHeader(
      "T1 (Table I)", "Taxonomy of the presented techniques",
      "2 categories / 8 sub-areas spanning design+construction and "
      "applications");

  Rng rng(1);
  TownOptions topt;
  topt.grid_rows = 3;
  topt.grid_cols = 3;
  auto town_r = GenerateTown(topt, rng);
  if (!town_r.ok()) {
    std::printf("town generation failed: %s\n",
                town_r.status().ToString().c_str());
    return 1;
  }
  HdMap town = std::move(town_r).value();
  char smoke[160];

  std::printf("| %-13s | %-27s | %-22s | %-26s | live smoke run\n",
              "Category", "Sub-area", "Paper refs", "Module");
  std::printf("|---------------|-----------------------------|"
              "------------------------|----------------------------|\n");

  // (1.1) Map modeling and design.
  std::string blob = SerializeMap(town);
  SemanticRaster raster = RasterizeMap(town, 0.5);
  std::snprintf(smoke, sizeof(smoke),
                "town: %zu elems, %zu lanelets, %zu B serialized, "
                "%dx%d raster",
                town.NumElements(), town.lanelets().size(), blob.size(),
                raster.width(), raster.height());
  Row("Design&Constr", "Map modeling and design", "[3],[17]-[25]",
      "core (Lanelet2/HiDAM model)", smoke);

  // (1.2) Map creation.
  {
    LandmarkDetector detector({});
    GpsSensor gps({1.0, 0.8, 0.0}, rng);
    CrowdTraversal trav;
    const Lanelet& lane = town.lanelets().begin()->second;
    for (double s = 0.0; s < lane.Length(); s += 10.0) {
      Pose2 truth(lane.centerline.PointAt(s), lane.centerline.HeadingAt(s));
      trav.estimated_poses.push_back(
          Pose2(gps.Measure(truth.translation, rng), truth.heading));
      trav.detections.push_back(detector.Detect(town, truth, rng));
    }
    CrowdMapper::Options copt;
    copt.min_cluster_size = 2;
    auto mapped = CrowdMapper(copt).Map({trav, trav, trav});
    std::snprintf(smoke, sizeof(smoke),
                  "crowd pipeline reconstructed %zu landmarks from 3 "
                  "traversals",
                  mapped.size());
  }
  Row("Design&Constr", "Map creation", "[26]-[40]",
      "creation (crowd/LiDAR/aerial)", smoke);

  // (1.3) Map maintenance and update.
  {
    HdMap world = town;
    ChangeInjectorOptions iopt;
    iopt.landmark_add_prob = 0.1;
    iopt.landmark_remove_prob = 0.1;
    Rng irng(2);
    auto events = InjectChanges(iopt, &world, irng);
    Slamcu slamcu(&town, {});
    LandmarkDetector detector({});
    const Lanelet& lane = town.lanelets().begin()->second;
    for (int pass = 0; pass < 4; ++pass) {
      for (double s = 0.0; s < lane.Length(); s += 5.0) {
        Pose2 pose(lane.centerline.PointAt(s),
                   lane.centerline.HeadingAt(s));
        slamcu.ProcessFrame(pose, detector.Detect(world, pose, irng));
      }
    }
    std::snprintf(smoke, sizeof(smoke),
                  "%zu world changes injected; SLAMCU patch carries %zu "
                  "changes",
                  events.size(), slamcu.BuildPatch().NumChanges());
  }
  Row("Design&Constr", "Map maintenance and update", "[10],[11],[41]-[47]",
      "maintenance (SLAMCU/boost/fusion)", smoke);

  // (2.1) Localization.
  {
    Rng lrng(3);
    MarkingScanner scanner({});
    const Lanelet& lane = town.lanelets().begin()->second;
    MarkingLocalizer::Options lopt;
    lopt.filter.num_particles = 150;
    MarkingLocalizer localizer(&town, lopt);
    Pose2 truth(lane.centerline.PointAt(5.0), lane.centerline.HeadingAt(5.0));
    localizer.Init(truth, 1.0, 0.05, lrng);
    for (int i = 0; i < 20; ++i) {
      localizer.Predict(1.0, 0.0, lrng);
      double s = 5.0 + i;
      truth = Pose2(lane.centerline.PointAt(s),
                    lane.centerline.HeadingAt(s));
      localizer.Update(scanner.Scan(town, truth, lrng), lrng);
    }
    std::snprintf(
        smoke, sizeof(smoke), "marking-PF error %.2f m after 20 m drive",
        localizer.Estimate().translation.DistanceTo(truth.translation));
  }
  Row("Applications", "Localization", "[22],[48]-[57]",
      "localization (PF/EKF/raster)", smoke);

  // (2.2) Pose estimation.
  {
    const Lanelet& lane = town.lanelets().begin()->second;
    Pose3 pose = CompleteTo6Dof(
        town, Pose2(lane.centerline.PointAt(10.0),
                    lane.centerline.HeadingAt(10.0)));
    std::snprintf(smoke, sizeof(smoke),
                  "6-DoF completion: z=%.2f pitch=%.4f roll=%.4f",
                  pose.translation.z, pose.pitch, pose.roll);
  }
  Row("Applications", "Pose estimation", "[22],[23],[58]",
      "pose (6-DoF, factor graph)", smoke);

  // (2.3) Path planning.
  {
    RoutingGraph graph = RoutingGraph::Build(town);
    ElementId from = town.lanelets().begin()->first;
    ElementId to = town.lanelets().rbegin()->first;
    auto route = PlanRoute(graph, from, to, RouteAlgorithm::kBhps);
    if (route.ok()) {
      std::snprintf(smoke, sizeof(smoke),
                    "BHPS route: %zu lanelets, %.1f s drive, %zu nodes "
                    "expanded",
                    route->lanelets.size(), route->cost_seconds,
                    route->nodes_expanded);
    } else {
      std::snprintf(smoke, sizeof(smoke), "route: %s",
                    route.status().ToString().c_str());
    }
  }
  Row("Applications", "Path planning", "[2],[44],[52],[59]-[62]",
      "planning (routing/Frenet/PCC)", smoke);

  // (2.4) Perception.
  {
    Rng prng(4);
    const Lanelet& lane = town.lanelets().begin()->second;
    std::vector<SimObject> objects(2);
    objects[0].position = lane.centerline.PointAt(20.0);
    objects[1].position = lane.centerline.PointAt(40.0);
    Pose2 sensor(lane.centerline.PointAt(2.0),
                 lane.centerline.HeadingAt(2.0));
    auto scan = SimulateSceneScan(town, objects, sensor, {}, prng);
    auto dets = DetectObjects(town, scan, MapPriorMode::kFullMap, {});
    std::snprintf(smoke, sizeof(smoke),
                  "map-prior detector: %zu detections of 2 objects "
                  "(%zu scan points)",
                  dets.size(), scan.size());
  }
  Row("Applications", "Perception", "[6],[54],[63]",
      "perception (priors/cooperative)", smoke);

  // (2.5) ATVs.
  {
    Rng arng(5);
    auto factory = GenerateFactory({}, arng);
    if (factory.ok()) {
      std::snprintf(smoke, sizeof(smoke),
                    "factory: %zu walls, %zu aisles, %zu mapped signs",
                    factory->walls.size(), factory->aisles.size(),
                    factory->sign_map.landmarks().size());
    }
  }
  Row("Applications", "ATVs", "[11],[64]", "atv (grid/SLAM/sign update)",
      smoke);

  std::printf("\nAll 8 sub-areas of Table I are implemented and ran "
              "against the same synthetic town.\n\n");
  return 0;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
