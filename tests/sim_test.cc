#include <gtest/gtest.h>

#include <set>

#include "common/statistics.h"
#include "sim/change_injector.h"
#include "sim/road_network_generator.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"
#include "sim/vehicle.h"

namespace hdmap {
namespace {

TEST(TownGeneratorTest, ProducesValidMap) {
  Rng rng(1);
  TownOptions opt;
  opt.grid_rows = 3;
  opt.grid_cols = 3;
  auto town = GenerateTown(opt, rng);
  ASSERT_TRUE(town.ok()) << town.status().ToString();
  const HdMap& map = *town;
  EXPECT_TRUE(map.Validate().ok()) << map.Validate().ToString();
  EXPECT_EQ(map.map_nodes().size(), 9u);
  // 12 road segments in a 3x3 grid, each with 2 lanes (1 per direction).
  EXPECT_EQ(map.lane_bundles().size(), 12u);
  EXPECT_GT(map.lanelets().size(), 24u);  // Street lanes + connectors.
  EXPECT_GT(map.landmarks().size(), 10u);
  EXPECT_GT(map.area_features().size(), 0u);
}

TEST(TownGeneratorTest, RejectsDegenerate) {
  Rng rng(1);
  TownOptions opt;
  opt.grid_rows = 1;
  EXPECT_FALSE(GenerateTown(opt, rng).ok());
  TownOptions opt2;
  opt2.lanes_per_direction = 0;
  EXPECT_FALSE(GenerateTown(opt2, rng).ok());
}

TEST(TownGeneratorTest, MultiLaneHasLaneChangeNeighbors) {
  Rng rng(2);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  opt.lanes_per_direction = 2;
  auto town = GenerateTown(opt, rng);
  ASSERT_TRUE(town.ok());
  int with_neighbor = 0;
  for (const auto& [id, ll] : town->lanelets()) {
    if (ll.left_neighbor != kInvalidId || ll.right_neighbor != kInvalidId) {
      ++with_neighbor;
    }
  }
  EXPECT_GT(with_neighbor, 0);
}

TEST(TownGeneratorTest, DeterministicFromSeed) {
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  Rng rng_a(7), rng_b(7);
  auto a = GenerateTown(opt, rng_a);
  auto b = GenerateTown(opt, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->NumElements(), b->NumElements());
  for (const auto& [id, lm] : a->landmarks()) {
    const Landmark* other = b->FindLandmark(id);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->position, lm.position);
  }
}

TEST(HighwayGeneratorTest, ProducesConnectedCorridor) {
  Rng rng(3);
  HighwayOptions opt;
  opt.length = 5000.0;
  opt.hill_amplitude = 20.0;
  auto hw = GenerateHighway(opt, rng);
  ASSERT_TRUE(hw.ok()) << hw.status().ToString();
  EXPECT_TRUE(hw->Validate().ok()) << hw->Validate().ToString();
  EXPECT_GT(hw->lanelets().size(), 10u);
  EXPECT_GT(hw->landmarks().size(), 10u);

  // The forward chain must be drivable end to end: follow successors.
  // Find a lanelet with no predecessors whose chain is long.
  size_t longest_chain = 0;
  for (const auto& [id, ll] : hw->lanelets()) {
    if (!ll.predecessors.empty()) continue;
    size_t chain = 1;
    const Lanelet* cur = &ll;
    std::set<ElementId> seen{ll.id};
    while (!cur->successors.empty()) {
      ElementId next = cur->successors.front();
      if (seen.count(next) > 0) break;
      seen.insert(next);
      cur = hw->FindLanelet(next);
      ASSERT_NE(cur, nullptr);
      ++chain;
    }
    longest_chain = std::max(longest_chain, chain);
  }
  EXPECT_GE(longest_chain, 9u);  // ~5000/500 segments.

  // Elevation profile present and non-trivial.
  bool has_elevation = false;
  for (const auto& [id, ll] : hw->lanelets()) {
    for (double z : ll.elevation_profile) {
      if (std::abs(z) > 1.0) has_elevation = true;
    }
  }
  EXPECT_TRUE(has_elevation);
}

TEST(BicycleModelTest, StraightLineMotion) {
  BicycleModel model;
  BicycleModel::State s;
  s.pose = Pose2(0, 0, 0);
  s.speed = 10.0;
  for (int i = 0; i < 10; ++i) s = model.Step(s, 0.0, 0.0, 0.1);
  EXPECT_NEAR(s.pose.translation.x, 10.0, 1e-9);
  EXPECT_NEAR(s.pose.translation.y, 0.0, 1e-9);
  EXPECT_NEAR(s.speed, 10.0, 1e-9);
}

TEST(BicycleModelTest, SteeringCurves) {
  BicycleModel model(2.7);
  BicycleModel::State s;
  s.speed = 10.0;
  for (int i = 0; i < 50; ++i) s = model.Step(s, 0.0, 0.1, 0.1);
  EXPECT_GT(s.pose.heading, 0.1);
  EXPECT_GT(s.pose.translation.y, 1.0);
}

TEST(BicycleModelTest, SpeedNeverNegative) {
  BicycleModel model;
  BicycleModel::State s;
  s.speed = 1.0;
  s = model.Step(s, -10.0, 0.0, 1.0);
  EXPECT_EQ(s.speed, 0.0);
}

TEST(TrajectoryTest, FollowsRouteCenterline) {
  Rng rng(4);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  auto town = GenerateTown(opt, rng);
  ASSERT_TRUE(town.ok());
  // Pick a lanelet and one of its successors.
  ElementId first = kInvalidId, second = kInvalidId;
  for (const auto& [id, ll] : town->lanelets()) {
    if (!ll.successors.empty()) {
      first = id;
      second = ll.successors.front();
      break;
    }
  }
  ASSERT_NE(first, kInvalidId);
  auto traj = DriveRoute(*town, {first, second});
  ASSERT_TRUE(traj.ok()) << traj.status().ToString();
  EXPECT_GT(traj->size(), 10u);
  // Time is monotonic; poses stay near the centerlines.
  for (size_t i = 1; i < traj->size(); ++i) {
    EXPECT_GT((*traj)[i].t, (*traj)[i - 1].t);
  }
  for (const TimedPose& tp : *traj) {
    const Lanelet* ll = town->FindLanelet(tp.lanelet_id);
    ASSERT_NE(ll, nullptr);
    EXPECT_LT(ll->centerline.DistanceTo(tp.pose.translation), 0.1);
  }
}

TEST(TrajectoryTest, RejectsDisconnectedRoute) {
  Rng rng(4);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 2;
  auto town = GenerateTown(opt, rng);
  ASSERT_TRUE(town.ok());
  // Two arbitrary lanelets that are not successive.
  ElementId a = town->lanelets().begin()->first;
  ElementId b = kInvalidId;
  for (const auto& [id, ll] : town->lanelets()) {
    const Lanelet* la = town->FindLanelet(a);
    if (id != a &&
        std::find(la->successors.begin(), la->successors.end(), id) ==
            la->successors.end()) {
      b = id;
      break;
    }
  }
  ASSERT_NE(b, kInvalidId);
  EXPECT_FALSE(DriveRoute(*town, {a, b}).ok());
  EXPECT_FALSE(DriveRoute(*town, {}).ok());
}

TEST(GpsSensorTest, ErrorStatisticsMatchModel) {
  Rng rng(5);
  GpsSensor::Options opt;
  opt.noise_sigma = 1.5;
  opt.bias_sigma = 1.0;
  opt.bias_walk_sigma = 0.0;
  RunningStats err;
  for (int traversal = 0; traversal < 200; ++traversal) {
    GpsSensor gps(opt, rng);
    Vec2 fix = gps.Measure({100.0, 50.0}, rng);
    err.Add(fix.DistanceTo({100.0, 50.0}));
  }
  // Expected RMS per-axis ~ sqrt(1.5^2 + 1^2) = 1.8 => mean 2D error
  // ~ 1.8 * sqrt(pi/2) ~ 2.26.
  EXPECT_GT(err.mean(), 1.4);
  EXPECT_LT(err.mean(), 3.2);
}

TEST(OdometrySensorTest, MeasuresRelativeMotion) {
  Rng rng(6);
  OdometrySensor odo({0.0, 0.0});  // Noise-free.
  Pose2 a(0, 0, 0), b(3, 4, 0.2);
  auto d = odo.Measure(a, b, rng);
  EXPECT_NEAR(d.distance, 5.0, 1e-9);
  EXPECT_NEAR(d.heading_change, 0.2, 1e-9);
}

TEST(LandmarkDetectorTest, DetectsInFovWithNoise) {
  Rng rng(7);
  HdMap map;
  Landmark ahead;
  ahead.id = 1;
  ahead.position = {30, 2, 2};
  Landmark behind;
  behind.id = 2;
  behind.position = {-30, 0, 2};
  Landmark far_away;
  far_away.id = 3;
  far_away.position = {500, 0, 2};
  ASSERT_TRUE(map.AddLandmark(ahead).ok());
  ASSERT_TRUE(map.AddLandmark(behind).ok());
  ASSERT_TRUE(map.AddLandmark(far_away).ok());

  LandmarkDetector::Options opt;
  opt.detection_prob = 1.0;
  opt.clutter_rate = 0.0;
  LandmarkDetector detector(opt);
  Pose2 pose(0, 0, 0);
  int detections_of_1 = 0;
  RunningStats err;
  for (int i = 0; i < 100; ++i) {
    auto dets = detector.Detect(map, pose, rng);
    for (const auto& d : dets) {
      EXPECT_NE(d.truth_id, 2);  // Behind: outside FOV.
      EXPECT_NE(d.truth_id, 3);  // Out of range.
      if (d.truth_id == 1) {
        ++detections_of_1;
        err.Add(d.position_vehicle.DistanceTo({30, 2}));
      }
    }
  }
  EXPECT_EQ(detections_of_1, 100);
  EXPECT_LT(err.mean(), 1.0);
  EXPECT_GT(err.mean(), 0.0);
}

TEST(LandmarkDetectorTest, MissRateRoughlyHonored) {
  Rng rng(8);
  HdMap map;
  Landmark lm;
  lm.id = 1;
  lm.position = {20, 0, 2};
  ASSERT_TRUE(map.AddLandmark(lm).ok());
  LandmarkDetector::Options opt;
  opt.detection_prob = 0.7;
  opt.clutter_rate = 0.0;
  LandmarkDetector detector(opt);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!detector.Detect(map, Pose2(0, 0, 0), rng).empty()) ++hits;
  }
  EXPECT_NEAR(hits / 1000.0, 0.7, 0.05);
}

TEST(LandmarkDetectorTest, ReflectivityThresholdFiltersHrl) {
  Rng rng(9);
  HdMap map;
  Landmark dull;
  dull.id = 1;
  dull.position = {20, 0, 2};
  dull.reflectivity = 0.4;
  Landmark hrl;
  hrl.id = 2;
  hrl.position = {25, 0, 2};
  hrl.type = LandmarkType::kHighReflectiveLandmark;
  hrl.reflectivity = 0.98;
  ASSERT_TRUE(map.AddLandmark(dull).ok());
  ASSERT_TRUE(map.AddLandmark(hrl).ok());
  LandmarkDetector::Options opt;
  opt.detection_prob = 1.0;
  opt.clutter_rate = 0.0;
  opt.min_reflectivity = 0.9;
  LandmarkDetector detector(opt);
  auto dets = detector.Detect(map, Pose2(0, 0, 0), rng);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].truth_id, 2);
}

TEST(MarkingScannerTest, MarkingPointsAreBrighter) {
  Rng rng(10);
  HdMap map;
  LineFeature marking;
  marking.id = 1;
  marking.type = LineType::kSolidLaneMarking;
  marking.reflectivity = 0.85;
  marking.geometry = LineString({{-20, 1.75}, {20, 1.75}});
  ASSERT_TRUE(map.AddLineFeature(marking).ok());

  MarkingScanner scanner({});
  auto points = scanner.Scan(map, Pose2(0, 0, 0), rng);
  RunningStats on, off;
  for (const auto& p : points) {
    (p.on_marking ? on : off).Add(p.intensity);
  }
  EXPECT_GT(on.count(), 10u);
  EXPECT_GT(off.count(), 10u);
  EXPECT_GT(on.mean(), off.mean() + 0.3);
}

TEST(ChangeInjectorTest, ReportsGroundTruth) {
  Rng rng(11);
  TownOptions topt;
  topt.grid_rows = 3;
  topt.grid_cols = 3;
  auto town = GenerateTown(topt, rng);
  ASSERT_TRUE(town.ok());
  HdMap world = *town;

  ChangeInjectorOptions copt;
  copt.landmark_add_prob = 0.1;
  copt.landmark_remove_prob = 0.1;
  copt.landmark_move_prob = 0.1;
  copt.construction_sites = 2;
  auto events = InjectChanges(copt, &world, rng);
  EXPECT_GT(events.size(), 0u);

  int adds = 0, removes = 0, moves = 0, constructions = 0;
  for (const auto& ev : events) {
    switch (ev.type) {
      case ChangeType::kLandmarkAdded:
        ++adds;
        EXPECT_NE(world.FindLandmark(ev.element_id), nullptr);
        EXPECT_EQ(town->FindLandmark(ev.element_id), nullptr);
        break;
      case ChangeType::kLandmarkRemoved:
        ++removes;
        EXPECT_EQ(world.FindLandmark(ev.element_id), nullptr);
        EXPECT_NE(town->FindLandmark(ev.element_id), nullptr);
        break;
      case ChangeType::kLandmarkMoved: {
        ++moves;
        const Landmark* lm = world.FindLandmark(ev.element_id);
        ASSERT_NE(lm, nullptr);
        EXPECT_EQ(lm->position, ev.new_position);
        break;
      }
      case ChangeType::kConstructionSite: {
        ++constructions;
        const LineFeature* lf = world.FindLineFeature(ev.element_id);
        const LineFeature* orig = town->FindLineFeature(ev.element_id);
        ASSERT_NE(lf, nullptr);
        ASSERT_NE(orig, nullptr);
        // Geometry actually shifted somewhere.
        double max_shift = 0.0;
        for (const Vec2& p : lf->geometry.points()) {
          max_shift = std::max(max_shift, orig->geometry.DistanceTo(p));
        }
        EXPECT_GT(max_shift, 0.5);
        break;
      }
    }
  }
  EXPECT_EQ(constructions, 2);
  EXPECT_GT(adds + removes + moves, 0);
}

}  // namespace
}  // namespace hdmap
