#ifndef HDMAP_MAINTENANCE_SLAMCU_H_
#define HDMAP_MAINTENANCE_SLAMCU_H_

#include <map>
#include <vector>

#include "core/hd_map.h"
#include "core/map_patch.h"
#include "geometry/pose2.h"
#include "sim/sensors.h"

namespace hdmap {

/// Simultaneous Localization and Map Change Update (SLAMCU, Jo et al.
/// [41]): while localizing against the current HD map, maintain recursive
/// Bayesian estimates of candidate map changes — new features, vanished
/// features and moved features — and emit a change report once the
/// evidence crosses a confidence threshold.
class Slamcu {
 public:
  struct Options {
    /// Gate for associating a detection with an existing map feature.
    double association_radius = 4.0;
    /// Measurement sigma of a single world-projected detection.
    double measurement_sigma = 0.8;
    /// Evidence needed to confirm an addition (observation count).
    int add_confirmations = 4;
    /// Misses (feature in FOV but undetected) to confirm a removal.
    int remove_confirmations = 5;
    /// Map features displaced beyond this are treated as moved.
    double move_threshold = 1.5;
    /// Sensor FOV model for miss accounting.
    double fov_range = 45.0;
    double fov_rad = 2.0944;
  };

  /// State of one tracked candidate change.
  struct Track {
    Vec2 mean;
    double variance = 0.0;  ///< Isotropic position variance.
    int hits = 0;
    LandmarkType type = LandmarkType::kTrafficSign;
    /// For moved/removed candidates: the map feature involved.
    ElementId map_id = kInvalidId;
  };

  Slamcu(const HdMap* map, const Options& options);

  /// Processes one frame: the vehicle's estimated pose and its landmark
  /// detections. Updates internal change tracks.
  void ProcessFrame(const Pose2& estimated_pose,
                    const std::vector<LandmarkDetection>& detections);

  /// The confirmed changes accumulated so far, as a map patch plus the
  /// estimated positions of new features (for error scoring).
  MapPatch BuildPatch() const;

  /// Estimated positions of confirmed NEW features (additions), used to
  /// regenerate the paper's Fig. 2 error histogram.
  std::vector<Track> ConfirmedAdditions() const;
  std::vector<ElementId> ConfirmedRemovals() const;
  std::vector<Track> ConfirmedMoves() const;

 private:
  const HdMap* map_;
  Options options_;
  std::vector<Track> addition_tracks_;
  std::map<ElementId, int> miss_counts_;
  std::map<ElementId, Track> move_tracks_;
  /// Next id handed to confirmed additions in BuildPatch.
  mutable ElementId next_new_id_ = 1000000;
};

}  // namespace hdmap

#endif  // HDMAP_MAINTENANCE_SLAMCU_H_
