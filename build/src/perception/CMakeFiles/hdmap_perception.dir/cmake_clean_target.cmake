file(REMOVE_RECURSE
  "libhdmap_perception.a"
)
