#ifndef HDMAP_STORAGE_PATCH_WAL_H_
#define HDMAP_STORAGE_PATCH_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/map_patch.h"
#include "storage/fs_util.h"

namespace hdmap {

/// Append-only write-ahead log of staged MapPatches: the bridge between
/// "patch acknowledged" and "patch covered by a checkpoint". Each record
/// is length-prefixed and CRC-protected, and its payload is the framed
/// SerializePatch wire format — so a torn append (crash mid-write) or a
/// scribbled tail is detected record-by-record at replay, and the intact
/// prefix is still recovered:
///
///   u32 magic | u32 payload_len | u32 crc32(version_hint || payload)
///   | u64 version_hint | payload
///
/// `version_hint` records the published snapshot version current when the
/// patch was staged, letting recovery order replayed patches relative to
/// a checkpoint it fell back to.
///
/// Thread safety: Append is safe from any thread and uses group commit —
/// concurrent appenders enqueue their encoded records under a short
/// critical section, then one of them (the batch leader) writes and
/// fsyncs every pending record with a single write+fsync pair while the
/// others wait for their record's durability. An fsync costs the same
/// whether it covers one record or twenty, so K concurrent StagePatch
/// acks pay ~1 fsync instead of K serialized ones. Every other method
/// (Rewrite/Reset/Archive/Replay) still requires external exclusion
/// against in-flight Appends — MapService provides it with a
/// shared/exclusive stage lock.
class PatchWal {
 public:
  struct Options {
    /// Log file path; parent directories are created on first append.
    std::string path;
    FsyncMode fsync = FsyncMode::kAlways;
    /// Optional export of append/replay counters ("wal.*"). Must outlive
    /// the log.
    MetricsRegistry* metrics = nullptr;
    /// Optional fault seam (sites below). Must outlive the log.
    FaultInjector* fault_injector = nullptr;
  };

  /// Data-plane faults corrupt a record's bytes as they are appended
  /// (modelling a torn or scribbled append that was still acknowledged);
  /// kFailStatus fails the append before anything is written.
  static constexpr const char* kAppendFaultSite = "wal.append";
  /// Data-plane faults corrupt the log bytes as they are read back.
  static constexpr const char* kReplayFaultSite = "wal.replay";

  explicit PatchWal(Options options);
  ~PatchWal();

  PatchWal(const PatchWal&) = delete;
  PatchWal& operator=(const PatchWal&) = delete;

  /// Appends one record and fsyncs per FsyncMode before returning: once
  /// this is OK, the patch survives a crash (it will be replayed). On a
  /// failed write or fsync the log is truncated back to the batch
  /// boundary it started at, so a mid-append I/O error never leaves torn
  /// bytes for later successful appends to land after (every record of
  /// the failed batch reports the failure to its appender). Safe to call
  /// concurrently; see the group-commit note above.
  Status Append(const MapPatch& patch, uint64_t version_hint);

  /// Atomically replaces the whole log with one record per patch (all
  /// stamped `version_hint`): the new content is written to a temp file,
  /// fsynced per FsyncMode, renamed over the log, and the directory
  /// fsynced. Used after a checkpoint to trim the log down to the
  /// still-unpublished patches — a crash or I/O error at any point leaves
  /// the old log fully intact (a superset of what is needed), never a
  /// partial rewrite.
  Status Rewrite(const std::vector<MapPatch>& patches, uint64_t version_hint);

  /// Sets the log aside as "<path>.lost" (replacing any previous one) for
  /// offline salvage, leaving an empty log behind. Used when the log's
  /// records can no longer be applied (their base state is gone) but
  /// silently erasing acked bytes would be worse. No-op if the log does
  /// not exist.
  Status Archive();

  struct ReplayedRecord {
    MapPatch patch;
    uint64_t version_hint = 0;
  };
  struct ReplayResult {
    /// Intact records in append order.
    std::vector<ReplayedRecord> records;
    /// Torn/corrupt records detected and skipped (a torn tail counts as
    /// one however many bytes it garbled).
    size_t skipped_records = 0;
    size_t bytes_scanned = 0;
  };

  /// Scans the whole log, returning every intact record and counting the
  /// damaged ones (also into "wal.replay_skipped"). A missing log file is
  /// an empty result, not an error. Never fails on content — corruption
  /// is data to report, not an error to propagate.
  Result<ReplayResult> Replay() const;

  /// Truncates the log to empty (after a checkpoint covered its records)
  /// and fsyncs the truncation.
  Status Reset();

  /// Current log size on disk; 0 when the file does not exist.
  uint64_t SizeBytes() const;

  const Options& options() const { return options_; }

  /// Completed group-commit flushes (each one write+fsync covering >= 1
  /// records); appends / batches is the achieved commit-batching factor.
  uint64_t FsyncBatches() const;

 private:
  Status EnsureOpen();

  /// One wire record (header + framed patch payload), with data-plane
  /// append faults already applied.
  std::string EncodeRecord(const MapPatch& patch, uint64_t version_hint) const;

  /// Writes `batch` at the log tail and fsyncs per FsyncMode; on any
  /// failure truncates back to the pre-batch boundary. Exactly one thread
  /// (the batch leader) runs this at a time.
  Status WriteBatch(const std::string& batch);

  Options options_;
  int fd_ = -1;

  // Group-commit state. Each Append takes a ticket, splices its encoded
  // record onto pending_, and returns once a leader has flushed past its
  // ticket (completed_ticket_ >= ticket). failed_ carries per-ticket
  // flush errors back to their appenders (erased as they are consumed).
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::string pending_;
  uint64_t next_ticket_ = 1;
  uint64_t taken_ticket_ = 0;      // Highest ticket handed to a leader.
  uint64_t completed_ticket_ = 0;  // Highest ticket flushed (ok or not).
  bool flush_in_progress_ = false;
  std::map<uint64_t, Status> failed_;
  uint64_t fsync_batches_ = 0;

  Counter* appends_ = nullptr;
  Counter* append_failures_ = nullptr;
  Counter* replay_skipped_ = nullptr;
  Counter* resets_ = nullptr;
  Counter* batches_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  LatencyHistogram* lat_append_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_STORAGE_PATCH_WAL_H_
