#include "geometry/r_tree.h"

#include <algorithm>
#include <cmath>

namespace hdmap {

RTree::RTree(std::vector<Entry> entries, int node_capacity) {
  num_entries_ = entries.size();
  if (entries.empty()) return;
  if (node_capacity < 2) node_capacity = 2;

  // Leaf level.
  std::vector<int> level;  // Node indices of the current level.
  // STR: sort by x, partition into vertical slices, sort each by y.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  size_t n = entries.size();
  size_t num_leaves =
      (n + static_cast<size_t>(node_capacity) - 1) /
      static_cast<size_t>(node_capacity);
  size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  size_t slice_size =
      (n + num_slices - 1) / num_slices;
  for (size_t s = 0; s < n; s += slice_size) {
    size_t e = std::min(n, s + slice_size);
    std::sort(entries.begin() + static_cast<long>(s),
              entries.begin() + static_cast<long>(e),
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
  }
  // Create leaf nodes (one per entry) and group them bottom-up.
  std::vector<int> current;
  current.reserve(n);
  for (const Entry& en : entries) {
    nodes_.push_back(Node{en.box, en.id, true, -1, 0});
    current.push_back(static_cast<int>(nodes_.size()) - 1);
  }
  // Build internal levels until a single root remains.
  while (current.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i < current.size();
         i += static_cast<size_t>(node_capacity)) {
      size_t e = std::min(current.size(),
                          i + static_cast<size_t>(node_capacity));
      Node parent;
      parent.leaf = false;
      parent.first_child = static_cast<int>(children_.size());
      parent.num_children = static_cast<int>(e - i);
      for (size_t j = i; j < e; ++j) {
        children_.push_back(current[j]);
        parent.box.Extend(nodes_[static_cast<size_t>(current[j])].box);
      }
      nodes_.push_back(parent);
      next.push_back(static_cast<int>(nodes_.size()) - 1);
    }
    current = std::move(next);
  }
  root_ = current.front();
}

void RTree::QueryImpl(int node, const Aabb& q,
                      std::vector<int64_t>& out) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (!n.box.Intersects(q)) return;
  if (n.leaf) {
    out.push_back(n.id);
    return;
  }
  for (int c = 0; c < n.num_children; ++c) {
    QueryImpl(children_[static_cast<size_t>(n.first_child + c)], q, out);
  }
}

std::vector<int64_t> RTree::Query(const Aabb& query) const {
  std::vector<int64_t> out;
  if (root_ >= 0) QueryImpl(root_, query, out);
  return out;
}

std::vector<int64_t> RTree::QueryPoint(const Vec2& p) const {
  return Query(Aabb::FromPoint(p));
}

}  // namespace hdmap
