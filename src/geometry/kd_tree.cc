#include "geometry/kd_tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace hdmap {

KdTree::KdTree(std::vector<Entry> entries) : entries_(std::move(entries)) {
  if (entries_.empty()) return;
  nodes_.reserve(entries_.size());
  std::vector<int> order(entries_.size());
  std::iota(order.begin(), order.end(), 0);
  root_ = Build(0, static_cast<int>(order.size()), 0, order);
}

int KdTree::Build(int lo, int hi, int depth, std::vector<int>& order) {
  if (lo >= hi) return -1;
  int axis = depth % 2;
  int mid = (lo + hi) / 2;
  std::nth_element(order.begin() + lo, order.begin() + mid,
                   order.begin() + hi, [&](int a, int b) {
                     const Vec2& pa = entries_[static_cast<size_t>(a)].point;
                     const Vec2& pb = entries_[static_cast<size_t>(b)].point;
                     return axis == 0 ? pa.x < pb.x : pa.y < pb.y;
                   });
  int node_idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{order[static_cast<size_t>(mid)], -1, -1, axis});
  int left = Build(lo, mid, depth + 1, order);
  int right = Build(mid + 1, hi, depth + 1, order);
  nodes_[static_cast<size_t>(node_idx)].left = left;
  nodes_[static_cast<size_t>(node_idx)].right = right;
  return node_idx;
}

void KdTree::NearestImpl(int node, const Vec2& q, double& best_d2,
                         int& best) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Vec2& p = entries_[static_cast<size_t>(n.entry)].point;
  double d2 = q.SquaredDistanceTo(p);
  if (d2 < best_d2) {
    best_d2 = d2;
    best = n.entry;
  }
  double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  int near = delta <= 0.0 ? n.left : n.right;
  int far = delta <= 0.0 ? n.right : n.left;
  NearestImpl(near, q, best_d2, best);
  if (delta * delta < best_d2) NearestImpl(far, q, best_d2, best);
}

const KdTree::Entry* KdTree::Nearest(const Vec2& query) const {
  if (root_ < 0) return nullptr;
  double best_d2 = std::numeric_limits<double>::max();
  int best = -1;
  NearestImpl(root_, query, best_d2, best);
  return best >= 0 ? &entries_[static_cast<size_t>(best)] : nullptr;
}

void KdTree::KNearestImpl(
    int node, const Vec2& q, size_t k,
    std::vector<std::pair<double, int>>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Vec2& p = entries_[static_cast<size_t>(n.entry)].point;
  double d2 = q.SquaredDistanceTo(p);
  if (heap.size() < k) {
    heap.emplace_back(d2, n.entry);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, n.entry};
    std::push_heap(heap.begin(), heap.end());
  }
  double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  int near = delta <= 0.0 ? n.left : n.right;
  int far = delta <= 0.0 ? n.right : n.left;
  KNearestImpl(near, q, k, heap);
  if (heap.size() < k || delta * delta < heap.front().first) {
    KNearestImpl(far, q, k, heap);
  }
}

std::vector<KdTree::Entry> KdTree::KNearest(const Vec2& query,
                                            size_t k) const {
  std::vector<std::pair<double, int>> heap;
  heap.reserve(k + 1);
  KNearestImpl(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<Entry> out;
  out.reserve(heap.size());
  for (const auto& [d2, idx] : heap) {
    out.push_back(entries_[static_cast<size_t>(idx)]);
  }
  return out;
}

void KdTree::RadiusImpl(int node, const Vec2& q, double r2,
                        std::vector<Entry>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Vec2& p = entries_[static_cast<size_t>(n.entry)].point;
  if (q.SquaredDistanceTo(p) <= r2) {
    out.push_back(entries_[static_cast<size_t>(n.entry)]);
  }
  double delta = n.axis == 0 ? q.x - p.x : q.y - p.y;
  int near = delta <= 0.0 ? n.left : n.right;
  int far = delta <= 0.0 ? n.right : n.left;
  RadiusImpl(near, q, r2, out);
  if (delta * delta <= r2) RadiusImpl(far, q, r2, out);
}

std::vector<KdTree::Entry> KdTree::RadiusSearch(const Vec2& query,
                                                double radius) const {
  std::vector<Entry> out;
  RadiusImpl(root_, query, radius * radius, out);
  return out;
}

}  // namespace hdmap
