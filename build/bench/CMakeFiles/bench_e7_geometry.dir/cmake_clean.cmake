file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_geometry.dir/bench_e7_geometry.cc.o"
  "CMakeFiles/bench_e7_geometry.dir/bench_e7_geometry.cc.o.d"
  "bench_e7_geometry"
  "bench_e7_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
