#include "core/raster_filter.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace hdmap {

namespace {

/// Distance-weighted label histogram around (cx, cy) in `input`; returns
/// the winning non-empty label and its weight.
void WeightedMode(const SemanticRaster& input, int cx, int cy,
                  const WmofOptions& options, uint8_t* label,
                  double* weight) {
  std::array<double, 256> histogram{};
  for (int dy = -options.radius; dy <= options.radius; ++dy) {
    for (int dx = -options.radius; dx <= options.radius; ++dx) {
      int nx = cx + dx;
      int ny = cy + dy;
      if (!input.InBounds(nx, ny)) continue;
      uint8_t value = input.At(nx, ny);
      if (value == 0) continue;
      int chebyshev = std::max(std::abs(dx), std::abs(dy));
      double w = 1.0 / (1.0 + chebyshev);
      if (dx == 0 && dy == 0) w *= options.center_boost;
      histogram[value] += w;
    }
  }
  *label = 0;
  *weight = 0.0;
  for (int v = 1; v < 256; ++v) {
    if (histogram[static_cast<size_t>(v)] > *weight) {
      *weight = histogram[static_cast<size_t>(v)];
      *label = static_cast<uint8_t>(v);
    }
  }
}

}  // namespace

SemanticRaster WeightedModeFilter(const SemanticRaster& input,
                                  const WmofOptions& options) {
  SemanticRaster out(
      Aabb(input.origin(),
           input.origin() + Vec2{input.width() * input.resolution(),
                                 input.height() * input.resolution()}),
      input.resolution());
  for (int cy = 0; cy < input.height(); ++cy) {
    for (int cx = 0; cx < input.width(); ++cx) {
      uint8_t label = 0;
      double weight = 0.0;
      WeightedMode(input, cx, cy, options, &label, &weight);
      if (label != 0 && weight >= options.min_weight) {
        out.Set(cx, cy, label);
      }
    }
  }
  return out;
}

SemanticRaster UpsampleModeFilter(const SemanticRaster& input, int factor,
                                  const WmofOptions& options) {
  factor = std::max(1, factor);
  double fine_res = input.resolution() / factor;
  SemanticRaster out(
      Aabb(input.origin(),
           input.origin() + Vec2{input.width() * input.resolution(),
                                 input.height() * input.resolution()}),
      fine_res);
  for (int cy = 0; cy < out.height(); ++cy) {
    for (int cx = 0; cx < out.width(); ++cx) {
      int ix = cx / factor;
      int iy = cy / factor;
      uint8_t label = 0;
      double weight = 0.0;
      WeightedMode(input, ix, iy, options, &label, &weight);
      if (label != 0 && weight >= options.min_weight) {
        out.Set(cx, cy, label);
      }
    }
  }
  return out;
}

}  // namespace hdmap
