#ifndef HDMAP_COMMON_RNG_H_
#define HDMAP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace hdmap {

/// Deterministic PCG32 pseudo-random generator (O'Neill, 2014).
///
/// Every stochastic component in the library takes an explicit Rng& so that
/// simulations, tests and benchmarks are exactly reproducible from a seed.
/// Satisfies enough of UniformRandomBitGenerator to be used standalone.
class Rng {
 public:
  using result_type = uint32_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0u), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return NextU32(); }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, 1).
  double Uniform() {
    return NextU32() * (1.0 / 4294967296.0);
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    return lo + static_cast<int>(NextU32() %
                                 static_cast<uint32_t>(hi - lo + 1));
  }

  /// Standard normal via Box-Muller (cached second value).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-12);
    double u2 = Uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative; if all are zero, returns 0.
  int Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double x = Uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (x < acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// Forks an independent, deterministic child generator. Used to give each
  /// simulated vehicle / sensor its own stream.
  Rng Fork() {
    uint64_t child_seed =
        (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
    uint64_t child_stream =
        (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
    return Rng(child_seed, child_stream);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_RNG_H_
