#ifndef HDMAP_COMMON_EVENT_LOG_H_
#define HDMAP_COMMON_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hdmap {

/// Bounded, thread-safe log of typed operational events: the "why"
/// channel next to the metrics registry's "how much". Every degradation
/// a serving stack can report — a quarantined tile, WAL data loss, an
/// injected fault, a checkpoint fallback, a slow request — lands here as
/// one structured record carrying the trace id of the request (or
/// recovery) that observed it, so Health() == kDegraded is always
/// explainable by reading recent events and a metric increment can be
/// joined back to its flame graph.
///
/// The log is a fixed-capacity ring: appends never block on readers for
/// long and never allocate unboundedly; once full, the oldest events are
/// dropped (total_appended() keeps counting, so droppage is visible).
class EventLog {
 public:
  enum class Type : uint8_t {
    /// A read served around one or more quarantined (corrupt) tiles.
    kQuarantinedTile = 0,
    /// WAL records were lost, skipped, or orphaned (torn tail, failed
    /// replay apply, total-checkpoint-loss orphans).
    kWalDataLoss = 1,
    /// A FaultInjector policy fired on a control-plane site.
    kInjectedFault = 2,
    /// Recovery fell back past invalid checkpoints (or bootstrapped
    /// fresh after total checkpoint loss).
    kCheckpointFallback = 3,
    /// A request exceeded the configured slow threshold.
    kSlowRequest = 4,
    /// One recovery completed; detail summarizes what was restored.
    kRecoverySummary = 5,
    /// Admission control rejected a request with a typed BUSY response
    /// (full request queue or per-connection in-flight cap).
    kBusyRejected = 6,
    /// The tile server reaped a connection idle past the configured
    /// timeout (a dead client or follower pinning an epoll slot).
    kConnectionReaped = 7,
    /// Failover: the controller observed the leader dead or silent past
    /// the heartbeat timeout; detail carries how stale the last contact
    /// was. The degraded window opens here.
    kFailoverDetected = 8,
    /// Failover: a follower was promoted to leader under a new term;
    /// detail carries the promoted node, term, and the degraded-window
    /// duration in milliseconds.
    kFailoverComplete = 9,
    /// A replica discarded its state and installed a shipped catch-up
    /// snapshot (its position had been trimmed from the leader's log, or
    /// its state had diverged).
    kReplicaCatchUp = 10,
  };

  struct Event {
    /// 1-based, strictly increasing append sequence (the total order).
    uint64_t seq = 0;
    /// Wall-clock stamp, Unix epoch milliseconds.
    int64_t unix_ms = 0;
    Type type = Type::kQuarantinedTile;
    /// Status code associated with the cause (kOk for e.g. slow requests).
    StatusCode code = StatusCode::kOk;
    /// Trace id of the request/recovery that observed the event; 0 when
    /// tracing was disabled.
    uint64_t trace_id = 0;
    /// Human-readable specifics (which tiles, how many records, ...).
    std::string detail;
  };

  explicit EventLog(size_t capacity = 256);

  /// Clamp-resizes the ring (minimum 1), dropping oldest events if the
  /// new capacity is smaller. Not for use concurrent with hot appends —
  /// construction-time configuration.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  /// Appends one event, stamping seq and wall-clock time. Thread-safe.
  void Append(Type type, uint64_t trace_id, std::string detail,
              StatusCode code = StatusCode::kOk);

  /// The newest `max_n` events, newest first (descending seq).
  std::vector<Event> Recent(size_t max_n = 64) const;

  /// Events currently held (<= capacity).
  size_t size() const;
  /// Events ever appended, including ones the ring has since dropped.
  uint64_t total_appended() const;

  static std::string_view TypeToString(Type type);

  /// Inverse of TypeToString (the kStats parse-back path). Returns false
  /// (leaving *out untouched) for unknown names — a newer node may emit
  /// types this build does not know.
  static bool TypeFromString(std::string_view name, Type* out);

  /// Appends `event` to `*out` as one JSON object
  /// ({"seq":..,"unix_ms":..,"type":"..","code":"..","trace_id":"..",
  /// "detail":".."}) with the detail string escaped. This is the wire
  /// shape the kStats introspection response and the ClusterInspector's
  /// failover-timeline join both consume.
  static void AppendJson(const Event& event, std::string* out);

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 1;
  std::deque<Event> ring_;  // Oldest at front.
};

}  // namespace hdmap

#endif  // HDMAP_COMMON_EVENT_LOG_H_
