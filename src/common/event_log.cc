#include "common/event_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace hdmap {

namespace {

void AppendEscaped(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

EventLog::EventLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

void EventLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t EventLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void EventLog::Append(Type type, uint64_t trace_id, std::string detail,
                      StatusCode code) {
  Event event;
  event.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  event.type = type;
  event.code = code;
  event.trace_id = trace_id;
  event.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(event));
}

std::vector<EventLog::Event> EventLog::Recent(size_t max_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = std::min(max_n, ring_.size());
  std::vector<Event> out;
  out.reserve(n);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

std::string_view EventLog::TypeToString(Type type) {
  switch (type) {
    case Type::kQuarantinedTile:
      return "QUARANTINED_TILE";
    case Type::kWalDataLoss:
      return "WAL_DATA_LOSS";
    case Type::kInjectedFault:
      return "INJECTED_FAULT";
    case Type::kCheckpointFallback:
      return "CHECKPOINT_FALLBACK";
    case Type::kSlowRequest:
      return "SLOW_REQUEST";
    case Type::kRecoverySummary:
      return "RECOVERY_SUMMARY";
    case Type::kBusyRejected:
      return "BUSY_REJECTED";
    case Type::kConnectionReaped:
      return "CONNECTION_REAPED";
    case Type::kFailoverDetected:
      return "FAILOVER_DETECTED";
    case Type::kFailoverComplete:
      return "FAILOVER_COMPLETE";
    case Type::kReplicaCatchUp:
      return "REPLICA_CATCH_UP";
  }
  return "UNKNOWN";
}

bool EventLog::TypeFromString(std::string_view name, Type* out) {
  for (uint8_t raw = 0; raw <= static_cast<uint8_t>(Type::kReplicaCatchUp);
       ++raw) {
    Type type = static_cast<Type>(raw);
    if (TypeToString(type) == name) {
      *out = type;
      return true;
    }
  }
  return false;
}

void EventLog::AppendJson(const Event& event, std::string* out) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%" PRIu64 ",\"unix_ms\":%" PRId64 ",\"type\":\"",
                event.seq, event.unix_ms);
  *out += buf;
  *out += TypeToString(event.type);
  *out += "\",\"code\":\"";
  *out += StatusCodeToString(event.code);
  std::snprintf(buf, sizeof(buf), "\",\"trace_id\":\"%" PRIu64 "\",\"detail\":\"",
                event.trace_id);
  *out += buf;
  AppendEscaped(event.detail, out);
  *out += "\"}";
}

}  // namespace hdmap
