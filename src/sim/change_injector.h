#ifndef HDMAP_SIM_CHANGE_INJECTOR_H_
#define HDMAP_SIM_CHANGE_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "core/hd_map.h"
#include "core/ids.h"

namespace hdmap {

/// Kind of an injected world change.
enum class ChangeType {
  kLandmarkAdded = 0,
  kLandmarkRemoved = 1,
  kLandmarkMoved = 2,
  kConstructionSite = 3,  ///< Lane markings shifted over an interval.
};

/// Ground-truth record of one injected change (what maintenance pipelines
/// are scored against).
struct ChangeEvent {
  ChangeType type = ChangeType::kLandmarkAdded;
  ElementId element_id = kInvalidId;
  Vec3 old_position;
  Vec3 new_position;
  /// For construction sites: affected line features.
  std::vector<ElementId> affected_lines;
};

struct ChangeInjectorOptions {
  double landmark_add_prob = 0.05;    ///< Per existing landmark.
  double landmark_remove_prob = 0.05;
  double landmark_move_prob = 0.05;
  double move_sigma = 1.5;            ///< Displacement of moved landmarks.
  int construction_sites = 0;
  double construction_length = 120.0; ///< Meters of shifted markings.
  double construction_shift = 1.2;    ///< Lateral marking shift, meters.
};

/// Mutates `world` in place (the real world drifts away from the mapped
/// state) and returns the ground-truth change list. The original map —
/// copied before calling — is what the update pipelines hold.
std::vector<ChangeEvent> InjectChanges(const ChangeInjectorOptions& options,
                                       HdMap* world, Rng& rng);

}  // namespace hdmap

#endif  // HDMAP_SIM_CHANGE_INJECTOR_H_
