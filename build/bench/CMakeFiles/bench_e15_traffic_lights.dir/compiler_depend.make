# Empty compiler generated dependencies file for bench_e15_traffic_lights.
# This may be replaced when dependencies are built.
