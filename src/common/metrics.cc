#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hdmap {

namespace {

// Log-scale bucketing for latencies: 1/32 of a decade per bucket over
// [1 us, 10 s) — 7 decades, 224 buckets, ±4% relative resolution.
constexpr double kLogLo = -6.0;
constexpr double kLogHi = 1.0;
constexpr int kLogBins = 224;

}  // namespace

LatencyHistogram::LatencyHistogram()
    : log_histogram_(kLogLo, kLogHi, kLogBins) {}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) return;  // Rejects negatives and NaN.
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Add(seconds);
  // log10(0) is -inf; any sub-microsecond sample lands in underflow anyway.
  log_histogram_.Add(seconds > 0.0 ? std::log10(seconds) : kLogLo - 1.0);
}

size_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count();
}

double LatencyHistogram::mean_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.mean();
}

double LatencyHistogram::min_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.min();
}

double LatencyHistogram::max_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.max();
}

double LatencyHistogram::ApproxPercentileSeconds(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = log_histogram_.total();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile among all samples, in cumulative
  // count space: underflow bucket first, then the bins, then overflow.
  double rank = p / 100.0 * static_cast<double>(total);
  double cumulative = static_cast<double>(log_histogram_.underflow());
  if (rank <= cumulative) return std::pow(10.0, kLogLo);
  for (int bin = 0; bin < log_histogram_.num_bins(); ++bin) {
    double in_bin = static_cast<double>(log_histogram_.bin_count(bin));
    if (in_bin > 0.0 && rank <= cumulative + in_bin) {
      // Linear interpolation within the bucket, in log space.
      double frac = (rank - cumulative) / in_bin;
      double log_value = log_histogram_.bin_lo(bin) +
                         frac * (log_histogram_.bin_hi(bin) -
                                 log_histogram_.bin_lo(bin));
      return std::pow(10.0, log_value);
    }
    cumulative += in_bin;
  }
  return std::pow(10.0, kLogHi);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetLatency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, gauge->value()});
  }
  for (const auto& [name, latency] : latencies_) {
    out.push_back({name + ".count", static_cast<double>(latency->count())});
    out.push_back({name + ".mean_ms", latency->mean_seconds() * 1e3});
    out.push_back(
        {name + ".p50_ms", latency->ApproxPercentileSeconds(50.0) * 1e3});
    out.push_back(
        {name + ".p99_ms", latency->ApproxPercentileSeconds(99.0) * 1e3});
    out.push_back({name + ".max_ms", latency->max_seconds() * 1e3});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::Render() const {
  std::string text;
  for (const Sample& s : Snapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-44s %.6g\n", s.name.c_str(), s.value);
    text += buf;
  }
  return text;
}

}  // namespace hdmap
