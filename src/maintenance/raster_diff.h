#ifndef HDMAP_MAINTENANCE_RASTER_DIFF_H_
#define HDMAP_MAINTENANCE_RASTER_DIFF_H_

#include <vector>

#include "core/raster_layer.h"

namespace hdmap {

/// A region proposed as changed by the raster comparison.
struct RasterChangeRegion {
  Aabb region;
  double score = 0.0;       ///< Fraction of differing non-empty cells.
  uint8_t map_only = 0;     ///< Classes present only in the map raster.
  uint8_t world_only = 0;   ///< Classes present only in the observation.
};

/// Single-step raster change detection (Diff-Net [46] surrogate): map
/// elements are projected into a rasterized image and compared — here
/// bitwise against an observed semantic raster — revealing map changes
/// directly, without per-element tracking. The comparison is windowed so
/// each change is localized to a region proposal.
class RasterChangeDetector {
 public:
  struct Options {
    /// Window edge length in cells.
    int window_cells = 64;
    /// Windows whose differing-cell fraction exceeds this are reported.
    double score_threshold = 0.15;
    /// Windows with fewer non-empty cells than this are skipped (no
    /// content to compare).
    int min_content_cells = 20;
  };

  explicit RasterChangeDetector(const Options& options)
      : options_(options) {}

  /// Compares two same-geometry rasters (map-rendered vs observed) and
  /// returns the changed regions, strongest first. Mismatched geometry
  /// returns a single full-extent region with score 1.
  std::vector<RasterChangeRegion> Detect(
      const SemanticRaster& map_raster,
      const SemanticRaster& observed) const;

 private:
  Options options_;
};

}  // namespace hdmap

#endif  // HDMAP_MAINTENANCE_RASTER_DIFF_H_
