#include "service/map_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/serialization.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

ElementId FirstLandmarkId(const HdMap& map) {
  EXPECT_FALSE(map.landmarks().empty());
  return map.landmarks().begin()->first;
}

MapService::Options SmallTileOptions() {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  return opt;
}

TEST(MapServiceTest, ReadersFailBeforeInit) {
  MapService service;
  EXPECT_EQ(service.version(), 0u);
  EXPECT_EQ(service.snapshot(), nullptr);
  EXPECT_EQ(service.GetRegion(Aabb{{0, 0}, {10, 10}}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.MatchToLane({0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Route(1, 2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Publish().code(), StatusCode::kFailedPrecondition);
}

TEST(MapServiceTest, InitServesAllEndpoints) {
  MapService service(SmallTileOptions());
  HdMap world = StraightRoad(500.0);
  size_t num_landmarks = world.landmarks().size();
  ASSERT_TRUE(service.Init(std::move(world)).ok());
  EXPECT_EQ(service.version(), 1u);
  ASSERT_NE(service.snapshot(), nullptr);

  auto region = service.GetRegion(service.snapshot()->map.BoundingBox());
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->landmarks().size(), num_landmarks);

  auto tile = service.GetTile(service.snapshot()->tiles.TileAt({10, 0}));
  ASSERT_TRUE(tile.ok());
  EXPECT_GT(tile->NumElements(), 0u);

  auto match = service.MatchToLane({50.0, -1.75});
  ASSERT_TRUE(match.ok());

  ElementId lane = match->lanelet_id;
  auto route = service.Route(lane, lane);
  EXPECT_TRUE(route.ok());

  EXPECT_GE(service.SnapshotAgeSeconds(), 0.0);
}

TEST(MapServiceTest, HeldSnapshotIsIsolatedFromPublish) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());

  std::shared_ptr<const MapSnapshot> before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;
  Vec3 new_pos = old_pos + Vec3{1.0, 1.0, 0.0};

  MapPatch patch;
  patch.moved_landmarks.push_back({sign, new_pos});
  service.StagePatch(patch);
  EXPECT_EQ(service.NumStagedPatches(), 1u);
  ASSERT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.NumStagedPatches(), 0u);

  // The pre-publish snapshot shows zero effects of the patch, in both the
  // stitched map and the serialized tiles it serves.
  EXPECT_EQ(before->version, 1u);
  EXPECT_EQ(before->map.FindLandmark(sign)->position, old_pos);
  auto old_region = before->tiles.LoadRegion(before->map.BoundingBox());
  ASSERT_TRUE(old_region.ok());
  EXPECT_EQ(old_region->FindLandmark(sign)->position, old_pos);

  // Post-publish readers see all of it.
  std::shared_ptr<const MapSnapshot> after = service.snapshot();
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->map.FindLandmark(sign)->position, new_pos);
  auto new_region = service.GetRegion(after->map.BoundingBox());
  ASSERT_TRUE(new_region.ok());
  EXPECT_EQ(new_region->FindLandmark(sign)->position, new_pos);
}

TEST(MapServiceTest, CowTilesMatchFullRebuild) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();

  MapPatch patch;
  ElementId sign = FirstLandmarkId(before->map);
  // Move a landmark across tiles and add one in untouched space.
  patch.moved_landmarks.push_back(
      {sign, before->map.FindLandmark(sign)->position + Vec3{150, 0, 0}});
  Landmark fresh;
  fresh.id = 99001;
  fresh.position = {321.0, 2.0, 1.0};
  patch.added_landmarks.push_back(fresh);
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  auto after = service.snapshot();
  // Copy-on-write must be indistinguishable from a from-scratch build of
  // the patched map: byte-identical tiles under the same options.
  TileStore full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(full.Build(after->map).ok());
  EXPECT_EQ(after->tiles.raw_tiles(), full.raw_tiles());
  // And the previous snapshot's store was left byte-identical to its own
  // full build.
  TileStore old_full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(old_full.Build(before->map).ok());
  EXPECT_EQ(before->tiles.raw_tiles(), old_full.raw_tiles());
}

TEST(MapServiceTest, CowTilesMatchFullRebuildOnRelationalPatch) {
  HdMap world = StraightRoad(500.0);
  ElementId lane_id = world.lanelets().begin()->first;
  RegulatoryElement reg;
  reg.id = 77001;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {lane_id};
  ASSERT_TRUE(world.AddRegulatoryElement(reg).ok());
  world.FindMutableLanelet(lane_id)->regulatory_ids.push_back(reg.id);

  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(std::move(world)).ok());
  auto before = service.snapshot();

  // Shorten the regulated lanelet and tighten its speed limit in one
  // patch: both changes ripple through every tile the lanelet occupies.
  Lanelet shorter = *before->map.FindLanelet(lane_id);
  std::vector<Vec2> pts(shorter.centerline.points().begin(),
                        shorter.centerline.points().end() - 2);
  shorter.centerline = LineString(std::move(pts));
  reg.speed_limit_mps = 6.0;

  MapPatch patch;
  patch.updated_lanelets.push_back(shorter);
  patch.updated_regulatory_elements.push_back(reg);
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  auto after = service.snapshot();
  EXPECT_NEAR(after->map.EffectiveSpeedLimit(lane_id), 6.0, 1e-9);
  TileStore full(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(full.Build(after->map).ok());
  EXPECT_EQ(after->tiles.raw_tiles(), full.raw_tiles());
}

TEST(MapServiceTest, PublishIsAllOrNothing) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;

  MapPatch good;
  good.moved_landmarks.push_back({sign, old_pos + Vec3{1, 0, 0}});
  MapPatch bad;
  bad.removed_landmarks.push_back(987654);  // No such landmark.
  service.StagePatch(good);
  service.StagePatch(bad);

  EXPECT_EQ(service.Publish().code(), StatusCode::kNotFound);
  // Nothing published, no version consumed, queue intact.
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign)->position, old_pos);
  EXPECT_EQ(service.NumStagedPatches(), 2u);
  service.DiscardStagedPatches();
  EXPECT_EQ(service.NumStagedPatches(), 0u);
  // An empty publish is a no-op, not a version bump.
  EXPECT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.version(), 1u);
}

TEST(MapServiceTest, RoutingGraphSharedWhenTopologyUntouched) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto v1 = service.snapshot();

  MapPatch landmarks_only;
  ElementId sign = FirstLandmarkId(v1->map);
  landmarks_only.moved_landmarks.push_back(
      {sign, v1->map.FindLandmark(sign)->position + Vec3{0.5, 0, 0}});
  ASSERT_TRUE(service.ApplyPatch(landmarks_only).ok());
  auto v2 = service.snapshot();
  EXPECT_EQ(v2->routing, v1->routing);  // Shared, not rebuilt.

  MapPatch topology;
  topology.removed_lanelets.push_back(v1->map.lanelets().begin()->first);
  ASSERT_TRUE(service.ApplyPatch(topology).ok());
  auto v3 = service.snapshot();
  EXPECT_NE(v3->routing, v2->routing);  // Rebuilt for the new topology.
}

TEST(MapServiceTest, MetricsFlowThroughRegistry) {
  MetricsRegistry registry;
  MapService::Options opt = SmallTileOptions();
  opt.metrics = &registry;
  MapService service(opt);
  EXPECT_EQ(&service.metrics(), &registry);

  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  Aabb box = service.snapshot()->map.BoundingBox();
  ASSERT_TRUE(service.GetRegion(box).ok());
  ASSERT_TRUE(service.GetRegion(box).ok());
  (void)service.MatchToLane({1e9, 1e9});  // An error.

  MapPatch patch;
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  patch.moved_landmarks.push_back(
      {sign, service.snapshot()->map.FindLandmark(sign)->position});
  ASSERT_TRUE(service.ApplyPatch(patch).ok());

  EXPECT_GE(registry.GetCounter("map_service.requests")->value(), 3u);
  EXPECT_GE(registry.GetCounter("map_service.errors")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("map_service.patches_published")->value(),
            1u);
  EXPECT_EQ(registry.GetGauge("map_service.snapshot_version")->value(), 2.0);
  EXPECT_EQ(registry.GetLatency("map_service.get_region")->count(), 2u);
  EXPECT_EQ(registry.GetLatency("map_service.publish")->count(), 1u);
  // The snapshot's tile cache exports through the same registry: the two
  // identical region loads give the second one cache hits.
  EXPECT_GT(registry.GetCounter("tile_store.cache_hits")->value(), 0u);
}

TEST(MapServiceTest, ReInitKeepsVersionMonotonic) {
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(300.0)).ok());
  ASSERT_TRUE(service.Init(StraightRoad(400.0)).ok());
  EXPECT_EQ(service.version(), 2u);
}

TEST(MapServiceTest, PatchSurvivesSerializationIntoPublish) {
  // The fleet-side flow: a patch arrives on the wire, is decoded, and
  // published as one version.
  MapService service(SmallTileOptions());
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  MapPatch patch;
  patch.removed_landmarks.push_back(sign);

  auto decoded = DeserializePatch(SerializePatch(patch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(service.ApplyPatch(*std::move(decoded)).ok());
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign), nullptr);
}

TEST(MapServiceFaultTest, InjectedPublishFaultLeavesServiceIntact) {
  FaultInjector faults(7);
  faults.AddPolicy({MapService::kPublishFaultSite, FaultKind::kFailStatus,
                    1.0, StatusCode::kInternal});
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  auto before = service.snapshot();
  ElementId sign = FirstLandmarkId(before->map);
  Vec3 old_pos = before->map.FindLandmark(sign)->position;

  MapPatch patch;
  patch.moved_landmarks.push_back({sign, old_pos + Vec3{1, 0, 0}});
  service.StagePatch(patch);

  // The injected failure aborts the publish after the expensive work;
  // nothing rolls forward.
  EXPECT_EQ(service.Publish().code(), StatusCode::kInternal);
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.snapshot(), before);
  EXPECT_EQ(service.NumStagedPatches(), 1u);
  // Old snapshot keeps serving reads throughout.
  EXPECT_TRUE(service.GetRegion(before->map.BoundingBox()).ok());

  // Fault lifted: the same staged patch publishes cleanly.
  faults.ClearPolicies();
  ASSERT_TRUE(service.Publish().ok());
  EXPECT_EQ(service.version(), 2u);
  EXPECT_EQ(service.NumStagedPatches(), 0u);
  EXPECT_EQ(service.snapshot()->map.FindLandmark(sign)->position,
            (old_pos + Vec3{1, 0, 0}));
}

TEST(MapServiceFaultTest, DegradedRegionsCountAndDriveHealth) {
  FaultInjector faults(21);
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());
  Aabb world_box = service.snapshot()->map.BoundingBox();
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);

  // Corrupt every tile load from here on.
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  RegionReport report;
  auto region = service.GetRegion(world_box, &report);
  // Partial mode: the request still succeeds, served around the holes.
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_FALSE(report.corrupt_tiles.empty());
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.errors")->value(), 0u);
  EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);

  // A degraded region observed without a caller-supplied report still
  // counts.
  ASSERT_TRUE(service.GetRegion(world_box).ok());
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            2u);

  // Single-tile loads surface the data loss as a per-code error.
  auto tile = service.GetTile(service.snapshot()->tiles.TileAt({10, 0}));
  ASSERT_FALSE(tile.ok());
  EXPECT_EQ(tile.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(
      service.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.errors")->value(), 1u);

  // A successful publish swaps in freshly built tiles and re-baselines
  // health back to serving.
  faults.ClearPolicies();
  ElementId sign = FirstLandmarkId(service.snapshot()->map);
  MapPatch patch;
  patch.moved_landmarks.push_back(
      {sign,
       service.snapshot()->map.FindLandmark(sign)->position + Vec3{1, 0, 0}});
  ASSERT_TRUE(service.ApplyPatch(patch).ok());
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
  ASSERT_TRUE(service.GetRegion(world_box, &report).ok());
  EXPECT_TRUE(report.corrupt_tiles.empty());
  EXPECT_EQ(service.Health(), ServiceHealth::kServing);
}

TEST(MapServiceFaultTest, StrictReadsFailInsteadOfDegrading) {
  FaultInjector faults(33);
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  MapService::Options opt = SmallTileOptions();
  opt.fault_injector = &faults;
  opt.strict_reads = true;
  MapService service(opt);
  ASSERT_TRUE(service.Init(StraightRoad(500.0)).ok());

  auto region = service.GetRegion(service.snapshot()->map.BoundingBox());
  ASSERT_FALSE(region.ok());
  EXPECT_EQ(region.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(
      service.metrics().GetCounter("map_service.errors{DATA_LOSS}")->value(),
      1u);
  EXPECT_EQ(service.metrics().GetCounter("map_service.regions_degraded")
                ->value(),
            0u);
  EXPECT_EQ(service.Health(), ServiceHealth::kDegraded);
}

}  // namespace
}  // namespace hdmap
