#include "core/tile_view.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>

#include "common/arena.h"
#include "core/wire_frame.h"

namespace hdmap {

// Record layouts (all offsets in bytes, all fields little-endian, every
// record size a multiple of 8):
//
//   Landmark    0:i64 id | 8,16,24:f64 x,y,z | 32:f64 reflectivity |
//               40:u32 type | 44:u32 subtype_len | 48: subtype bytes,
//               zero-padded to 8  -> 48 + align8(subtype_len)
//   LineFeature 0:i64 id | 8:f64 reflectivity | 16:u32 type |
//               20:u32 n_points | 24:u32 n_survey | 28:u32 pad |
//               32: points n x (f64,f64) | survey n x (f32,f32,f32),
//               zero-padded to 8  -> 32 + 16*np + align8(12*ns)
//   AreaFeature 0:i64 id | 8:u32 type | 12:u32 n_vertices |
//               16: vertices n x (f64,f64)  -> 16 + 16*n
//   Lanelet     0:i64 id | 8:i64 left_boundary | 16:i64 right_boundary |
//               24:i64 left_neighbor | 32:i64 right_neighbor |
//               40:i64 bundle | 48:f64 speed_limit | 56:u32 n_centerline |
//               60:u32 n_elevation | 64:u32 n_successors |
//               68:u32 n_predecessors | 72:u32 n_regulatory | 76:u32 pad |
//               80: centerline nc x (f64,f64) | elevation ne x f64 |
//               successors ns x i64 | predecessors np x i64 |
//               regulatory nr x i64  -> 80 + 16*nc + 8*(ne+ns+np+nr)
//   Regulatory  0:i64 id | 8:f64 speed_limit | 16:i64 anchor |
//               24:u32 type | 28:u32 n_lanelets | 32: ids n x i64
//   LaneBundle  0:i64 id | 8:i64 from_node | 16:i64 to_node | 24:u32 n |
//               28:u32 pad | 32: ids n x i64
//   MapNode     0:i64 id | 8:f64 x | 16:f64 y | 24:u32 n | 28:u32 pad |
//               32: ids n x i64

namespace {

constexpr size_t kHeaderSize = 104;  // 16 fixed + 7*12 directory + 4 pad.
constexpr size_t kNumSections = 7;

constexpr uint64_t Align8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double LoadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

float LoadF32(const uint8_t* p) {
  float v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// --- Encoder ---------------------------------------------------------------

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendI64(std::string& out, int64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendF32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PadTo8(std::string& out, size_t base) {
  size_t rel = out.size() - base;
  out.append(Align8(rel) - rel, '\0');
}

uint64_t LandmarkWireSize(const Landmark& lm) {
  return 48 + Align8(lm.subtype.size());
}
uint64_t LineFeatureWireSize(const LineFeature& lf) {
  return 32 + 16 * uint64_t{lf.geometry.size()} +
         Align8(12 * uint64_t{lf.survey_points.size()});
}
uint64_t AreaFeatureWireSize(const AreaFeature& af) {
  return 16 + 16 * uint64_t{af.geometry.size()};
}
uint64_t LaneletWireSize(const Lanelet& ll) {
  return 80 + 16 * uint64_t{ll.centerline.size()} +
         8 * (uint64_t{ll.elevation_profile.size()} + ll.successors.size() +
              ll.predecessors.size() + ll.regulatory_ids.size());
}
uint64_t RegulatoryWireSize(const RegulatoryElement& reg) {
  return 32 + 8 * uint64_t{reg.lanelet_ids.size()};
}
uint64_t LaneBundleWireSize(const LaneBundle& b) {
  return 32 + 8 * uint64_t{b.lanelet_ids.size()};
}
uint64_t MapNodeWireSize(const MapNode& n) {
  return 32 + 8 * uint64_t{n.bundle_ids.size()};
}

void AppendLandmark(std::string& out, const Landmark& lm) {
  size_t base = out.size();
  AppendI64(out, lm.id);
  AppendF64(out, lm.position.x);
  AppendF64(out, lm.position.y);
  AppendF64(out, lm.position.z);
  AppendF64(out, lm.reflectivity);
  AppendU32(out, static_cast<uint32_t>(lm.type));
  AppendU32(out, static_cast<uint32_t>(lm.subtype.size()));
  out.append(lm.subtype);
  PadTo8(out, base);
}

void AppendLineFeature(std::string& out, const LineFeature& lf) {
  size_t base = out.size();
  AppendI64(out, lf.id);
  AppendF64(out, lf.reflectivity);
  AppendU32(out, static_cast<uint32_t>(lf.type));
  AppendU32(out, static_cast<uint32_t>(lf.geometry.size()));
  AppendU32(out, static_cast<uint32_t>(lf.survey_points.size()));
  AppendU32(out, 0);
  for (const Vec2& p : lf.geometry.points()) {
    AppendF64(out, p.x);
    AppendF64(out, p.y);
  }
  for (const Vec3& p : lf.survey_points) {
    AppendF32(out, static_cast<float>(p.x));
    AppendF32(out, static_cast<float>(p.y));
    AppendF32(out, static_cast<float>(p.z));
  }
  PadTo8(out, base);
}

void AppendAreaFeature(std::string& out, const AreaFeature& af) {
  AppendI64(out, af.id);
  AppendU32(out, static_cast<uint32_t>(af.type));
  AppendU32(out, static_cast<uint32_t>(af.geometry.size()));
  for (const Vec2& p : af.geometry.vertices()) {
    AppendF64(out, p.x);
    AppendF64(out, p.y);
  }
}

void AppendIdArray(std::string& out, const std::vector<ElementId>& ids) {
  for (ElementId id : ids) AppendI64(out, id);
}

void AppendLanelet(std::string& out, const Lanelet& ll) {
  AppendI64(out, ll.id);
  AppendI64(out, ll.left_boundary_id);
  AppendI64(out, ll.right_boundary_id);
  AppendI64(out, ll.left_neighbor);
  AppendI64(out, ll.right_neighbor);
  AppendI64(out, ll.bundle_id);
  AppendF64(out, ll.speed_limit_mps);
  AppendU32(out, static_cast<uint32_t>(ll.centerline.size()));
  AppendU32(out, static_cast<uint32_t>(ll.elevation_profile.size()));
  AppendU32(out, static_cast<uint32_t>(ll.successors.size()));
  AppendU32(out, static_cast<uint32_t>(ll.predecessors.size()));
  AppendU32(out, static_cast<uint32_t>(ll.regulatory_ids.size()));
  AppendU32(out, 0);
  for (const Vec2& p : ll.centerline.points()) {
    AppendF64(out, p.x);
    AppendF64(out, p.y);
  }
  for (double e : ll.elevation_profile) AppendF64(out, e);
  AppendIdArray(out, ll.successors);
  AppendIdArray(out, ll.predecessors);
  AppendIdArray(out, ll.regulatory_ids);
}

void AppendRegulatory(std::string& out, const RegulatoryElement& reg) {
  AppendI64(out, reg.id);
  AppendF64(out, reg.speed_limit_mps);
  AppendI64(out, reg.anchor_id);
  AppendU32(out, static_cast<uint32_t>(reg.type));
  AppendU32(out, static_cast<uint32_t>(reg.lanelet_ids.size()));
  AppendIdArray(out, reg.lanelet_ids);
}

void AppendLaneBundle(std::string& out, const LaneBundle& b) {
  AppendI64(out, b.id);
  AppendI64(out, b.from_node);
  AppendI64(out, b.to_node);
  AppendU32(out, static_cast<uint32_t>(b.lanelet_ids.size()));
  AppendU32(out, 0);
  AppendIdArray(out, b.lanelet_ids);
}

void AppendMapNode(std::string& out, const MapNode& n) {
  AppendI64(out, n.id);
  AppendF64(out, n.position.x);
  AppendF64(out, n.position.y);
  AppendU32(out, static_cast<uint32_t>(n.bundle_ids.size()));
  AppendU32(out, 0);
  AppendIdArray(out, n.bundle_ids);
}

/// Encodes one section: slot table (scratch offsets live on `arena`, not
/// the global allocator), 8-byte pad, then the records. Returns
/// {count, offset, length} for the header directory.
template <typename Map, typename SizeFn, typename AppendFn>
std::array<uint32_t, 3> EncodeSection(std::string& out, Arena& arena,
                                      const Map& elements, SizeFn wire_size,
                                      AppendFn append) {
  uint32_t count = static_cast<uint32_t>(elements.size());
  uint32_t section_offset = static_cast<uint32_t>(out.size());

  using OffsetVec = std::vector<uint32_t, ArenaAllocator<uint32_t>>;
  OffsetVec offsets{ArenaAllocator<uint32_t>(&arena)};
  offsets.reserve(count + 1);
  uint64_t running = 0;
  offsets.push_back(0);
  for (const auto& [id, element] : elements) {
    running += wire_size(element);
    offsets.push_back(static_cast<uint32_t>(running));
  }

  size_t table_base = out.size();
  for (uint32_t off : offsets) AppendU32(out, off);
  PadTo8(out, table_base);

  for (const auto& [id, element] : elements) append(out, element);

  return {count, section_offset, static_cast<uint32_t>(out.size()) -
                                     section_offset};
}

// --- Validator -------------------------------------------------------------

/// One validated section: bounds-checks the slot table and every record
/// against `payload`, then records base pointers for the accessors.
struct SectionSpec {
  uint32_t count;
  uint32_t offset;
  uint32_t length;
};

Status SectionError(size_t index, const std::string& what) {
  return Status::DataLoss("tile v3 section " + std::to_string(index) + ": " +
                          what);
}

/// Exact wire size a record must have, derived from the counts in its
/// fixed header. `slot_size` has already been checked >= the fixed size.
uint64_t ExpectedRecordSize(size_t section, const uint8_t* rec) {
  switch (section) {
    case 0:  // Landmark.
      return 48 + Align8(LoadU32(rec + 44));
    case 1:  // LineFeature.
      return 32 + 16 * uint64_t{LoadU32(rec + 20)} +
             Align8(12 * uint64_t{LoadU32(rec + 24)});
    case 2:  // AreaFeature.
      return 16 + 16 * uint64_t{LoadU32(rec + 12)};
    case 3:  // Lanelet.
      return 80 + 16 * uint64_t{LoadU32(rec + 56)} +
             8 * (uint64_t{LoadU32(rec + 60)} + LoadU32(rec + 64) +
                  LoadU32(rec + 68) + LoadU32(rec + 72));
    case 4:  // RegulatoryElement.
      return 32 + 8 * uint64_t{LoadU32(rec + 28)};
    case 5:  // LaneBundle.
    case 6:  // MapNode.
      return 32 + 8 * uint64_t{LoadU32(rec + 24)};
    default:
      return 0;
  }
}

/// Minimum record size per section: the fixed-field prefix that
/// ExpectedRecordSize reads its counts from.
constexpr uint64_t kFixedRecordSize[kNumSections] = {48, 32, 16, 80,
                                                     32, 32, 32};

}  // namespace

// --- Public encoder --------------------------------------------------------

std::string EncodeTileV3(const HdMap& map) {
  std::string payload;
  payload.reserve(1024);
  payload.resize(kHeaderSize, '\0');

  Arena arena;
  std::array<std::array<uint32_t, 3>, kNumSections> directory;
  directory[0] = EncodeSection(payload, arena, map.landmarks(),
                               LandmarkWireSize, AppendLandmark);
  directory[1] = EncodeSection(payload, arena, map.line_features(),
                               LineFeatureWireSize, AppendLineFeature);
  directory[2] = EncodeSection(payload, arena, map.area_features(),
                               AreaFeatureWireSize, AppendAreaFeature);
  directory[3] = EncodeSection(payload, arena, map.lanelets(),
                               LaneletWireSize, AppendLanelet);
  directory[4] = EncodeSection(payload, arena, map.regulatory_elements(),
                               RegulatoryWireSize, AppendRegulatory);
  directory[5] = EncodeSection(payload, arena, map.lane_bundles(),
                               LaneBundleWireSize, AppendLaneBundle);
  directory[6] = EncodeSection(payload, arena, map.map_nodes(),
                               MapNodeWireSize, AppendMapNode);

  // Patch the header in place now that section extents are known.
  std::string header;
  header.reserve(kHeaderSize);
  AppendU32(header, kTileV3Magic);
  AppendU32(header, kTileV3Version);
  AppendU32(header, static_cast<uint32_t>(kNumSections));
  AppendU32(header, 0);  // Reserved.
  for (const auto& [count, offset, length] : directory) {
    AppendU32(header, count);
    AppendU32(header, offset);
    AppendU32(header, length);
  }
  header.append(kHeaderSize - header.size(), '\0');
  payload.replace(0, kHeaderSize, header);

  return WrapFrame(payload);
}

bool IsTileV3(std::string_view bytes) {
  if (IsFramed(bytes)) {
    if (bytes.size() < kWireFrameHeaderSize + sizeof(uint32_t)) return false;
    bytes = bytes.substr(kWireFrameHeaderSize);
  }
  return bytes.size() >= sizeof(uint32_t) &&
         LoadU32(reinterpret_cast<const uint8_t*>(bytes.data())) ==
             kTileV3Magic;
}

// --- Public view -----------------------------------------------------------

Result<TileView> TileView::Create(std::string_view bytes,
                                  FrameChecksum checksum) {
  return Create(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(bytes.data()),
                               bytes.size()),
      checksum);
}

Result<TileView> TileView::Create(std::span<const uint8_t> bytes,
                                  FrameChecksum checksum) {
  std::string_view raw(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  std::string_view payload = raw;
  if (IsFramed(raw)) {
    auto unwrapped = checksum == FrameChecksum::kVerify
                         ? UnwrapFrame(raw)
                         : UnwrapFrameTrusted(raw);
    HDMAP_RETURN_IF_ERROR(unwrapped.status());
    payload = *unwrapped;
  }

  const uint8_t* base = reinterpret_cast<const uint8_t*>(payload.data());
  const uint64_t size = payload.size();
  if (size < kHeaderSize) {
    return Status::DataLoss("tile v3 payload truncated: " +
                            std::to_string(size) + " bytes");
  }
  if (size > UINT32_MAX) {
    return Status::DataLoss("tile v3 payload exceeds 4 GiB");
  }
  if (LoadU32(base) != kTileV3Magic) {
    return Status::DataLoss("bad magic: not a v3 tile payload");
  }
  if (LoadU32(base + 4) != kTileV3Version) {
    return Status::DataLoss("unsupported tile v3 version " +
                            std::to_string(LoadU32(base + 4)));
  }
  if (LoadU32(base + 8) != kNumSections || LoadU32(base + 12) != 0) {
    return Status::DataLoss("tile v3 header: bad section count or reserved");
  }

  SectionSpec specs[kNumSections];
  for (size_t s = 0; s < kNumSections; ++s) {
    const uint8_t* dir = base + 16 + s * 12;
    specs[s] = {LoadU32(dir), LoadU32(dir + 4), LoadU32(dir + 8)};
  }

  // Sections must tile the payload after the header exactly, in order —
  // contiguity makes overlapping or dangling sections unrepresentable.
  uint64_t expected_offset = kHeaderSize;
  for (size_t s = 0; s < kNumSections; ++s) {
    if (specs[s].offset != expected_offset) {
      return SectionError(s, "offset " + std::to_string(specs[s].offset) +
                                 " breaks contiguity (expected " +
                                 std::to_string(expected_offset) + ")");
    }
    expected_offset += specs[s].length;  // u64: cannot overflow 2 u32s * 7.
  }
  if (expected_offset != size) {
    return Status::DataLoss("tile v3 sections cover " +
                            std::to_string(expected_offset) + " of " +
                            std::to_string(size) + " payload bytes");
  }

  TileView view;
  for (size_t s = 0; s < kNumSections; ++s) {
    const uint64_t count = specs[s].count;
    const uint64_t table_bytes = Align8((count + 1) * 4);
    if (table_bytes > specs[s].length) {
      return SectionError(s, "slot table truncated");
    }
    const uint8_t* table = base + specs[s].offset;
    const uint8_t* data = table + table_bytes;
    const uint64_t data_len = specs[s].length - table_bytes;

    // Slot offsets: start at 0, non-decreasing, end exactly at the
    // section's data length. Monotonicity + the exact-size check below
    // make every record a disjoint in-bounds slice.
    if (LoadU32(table) != 0) {
      return SectionError(s, "first slot offset not 0");
    }
    uint64_t prev = 0;
    for (uint64_t i = 1; i <= count; ++i) {
      uint64_t off = LoadU32(table + i * 4);
      if (off < prev) {
        return SectionError(s, "slot offsets not monotonic at index " +
                                   std::to_string(i));
      }
      prev = off;
    }
    if (prev != data_len) {
      return SectionError(s, "slot table ends at " + std::to_string(prev) +
                                 ", data region is " +
                                 std::to_string(data_len) + " bytes");
    }

    // Per-record: the slot must be exactly the size implied by the
    // counts in the record's fixed header, and ids strictly ascend.
    int64_t prev_id = INT64_MIN;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t off = LoadU32(table + i * 4);
      const uint64_t slot_size = LoadU32(table + (i + 1) * 4) - off;
      if (slot_size < kFixedRecordSize[s]) {
        return SectionError(s, "record " + std::to_string(i) +
                                   " smaller than fixed header");
      }
      const uint8_t* rec = data + off;
      if (ExpectedRecordSize(s, rec) != slot_size) {
        return SectionError(s, "record " + std::to_string(i) +
                                   " size disagrees with its counts");
      }
      int64_t id = LoadI64(rec);
      if (id <= prev_id) {
        return SectionError(s, "ids not strictly ascending at record " +
                                   std::to_string(i));
      }
      prev_id = id;
    }

    view.sections_[s] = Section{specs[s].count, table, data};
  }
  return view;
}

size_t TileView::NumElements() const {
  size_t n = 0;
  for (const Section& s : sections_) n += s.count;
  return n;
}

namespace {

/// Binary search over a validated section's strictly ascending ids.
/// Returns the record index, or count when absent.
size_t FindRecord(const uint8_t* table, const uint8_t* data, size_t count,
                  ElementId id) {
  size_t lo = 0;
  size_t hi = count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ElementId mid_id = LoadI64(data + LoadU32(table + mid * 4));
    if (mid_id == id) return mid;
    if (mid_id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return count;
}

}  // namespace

std::optional<LaneletView> TileView::FindLanelet(ElementId id) const {
  const Section& s = sections_[3];
  size_t i = FindRecord(s.table, s.data, s.count, id);
  if (i == s.count) return std::nullopt;
  return lanelet(i);
}

std::optional<LandmarkView> TileView::FindLandmark(ElementId id) const {
  const Section& s = sections_[0];
  size_t i = FindRecord(s.table, s.data, s.count, id);
  if (i == s.count) return std::nullopt;
  return landmark(i);
}

std::optional<LineFeatureView> TileView::FindLineFeature(ElementId id) const {
  const Section& s = sections_[1];
  size_t i = FindRecord(s.table, s.data, s.count, id);
  if (i == s.count) return std::nullopt;
  return line_feature(i);
}

Result<HdMap> TileView::Materialize() const {
  HdMap map;
  for (size_t i = 0; i < num_landmarks(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddLandmark(landmark(i).Materialize()));
  }
  for (size_t i = 0; i < num_line_features(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddLineFeature(line_feature(i).Materialize()));
  }
  for (size_t i = 0; i < num_area_features(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddAreaFeature(area_feature(i).Materialize()));
  }
  for (size_t i = 0; i < num_lanelets(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddLanelet(lanelet(i).Materialize()));
  }
  for (size_t i = 0; i < num_regulatory_elements(); ++i) {
    HDMAP_RETURN_IF_ERROR(
        map.AddRegulatoryElement(regulatory_element(i).Materialize()));
  }
  for (size_t i = 0; i < num_lane_bundles(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddLaneBundle(lane_bundle(i).Materialize()));
  }
  for (size_t i = 0; i < num_map_nodes(); ++i) {
    HDMAP_RETURN_IF_ERROR(map.AddMapNode(map_node(i).Materialize()));
  }
  return map;
}

// --- Element view accessors ------------------------------------------------

std::vector<Vec2> PolylineView::ToPoints() const {
  std::vector<Vec2> pts;
  pts.reserve(count_);
  for (size_t i = 0; i < count_; ++i) pts.push_back((*this)[i]);
  return pts;
}

ElementId LandmarkView::id() const { return LoadI64(rec_); }
LandmarkType LandmarkView::type() const {
  return static_cast<LandmarkType>(LoadU32(rec_ + 40));
}
Vec3 LandmarkView::position() const {
  return {LoadF64(rec_ + 8), LoadF64(rec_ + 16), LoadF64(rec_ + 24)};
}
double LandmarkView::reflectivity() const { return LoadF64(rec_ + 32); }
std::string_view LandmarkView::subtype() const {
  return {reinterpret_cast<const char*>(rec_ + 48), LoadU32(rec_ + 44)};
}
Landmark LandmarkView::Materialize() const {
  Landmark lm;
  lm.id = id();
  lm.type = type();
  lm.position = position();
  lm.reflectivity = reflectivity();
  lm.subtype = std::string(subtype());
  return lm;
}

ElementId LineFeatureView::id() const { return LoadI64(rec_); }
LineType LineFeatureView::type() const {
  return static_cast<LineType>(LoadU32(rec_ + 16));
}
double LineFeatureView::reflectivity() const { return LoadF64(rec_ + 8); }
PolylineView LineFeatureView::geometry() const {
  return {rec_ + 32, LoadU32(rec_ + 20)};
}
size_t LineFeatureView::num_survey_points() const {
  return LoadU32(rec_ + 24);
}
Vec3 LineFeatureView::survey_point(size_t i) const {
  const uint8_t* p = rec_ + 32 + 16 * uint64_t{LoadU32(rec_ + 20)} + i * 12;
  return {LoadF32(p), LoadF32(p + 4), LoadF32(p + 8)};
}
LineFeature LineFeatureView::Materialize() const {
  LineFeature lf;
  lf.id = id();
  lf.type = type();
  lf.reflectivity = reflectivity();
  lf.geometry = geometry().ToLineString();
  size_t n = num_survey_points();
  lf.survey_points.reserve(n);
  for (size_t i = 0; i < n; ++i) lf.survey_points.push_back(survey_point(i));
  return lf;
}

ElementId AreaFeatureView::id() const { return LoadI64(rec_); }
AreaType AreaFeatureView::type() const {
  return static_cast<AreaType>(LoadU32(rec_ + 8));
}
PolylineView AreaFeatureView::vertices() const {
  return {rec_ + 16, LoadU32(rec_ + 12)};
}
AreaFeature AreaFeatureView::Materialize() const {
  AreaFeature af;
  af.id = id();
  af.type = type();
  af.geometry = Polygon(vertices().ToPoints());
  return af;
}

ElementId LaneletView::id() const { return LoadI64(rec_); }
ElementId LaneletView::left_boundary_id() const { return LoadI64(rec_ + 8); }
ElementId LaneletView::right_boundary_id() const {
  return LoadI64(rec_ + 16);
}
ElementId LaneletView::left_neighbor() const { return LoadI64(rec_ + 24); }
ElementId LaneletView::right_neighbor() const { return LoadI64(rec_ + 32); }
ElementId LaneletView::bundle_id() const { return LoadI64(rec_ + 40); }
double LaneletView::speed_limit_mps() const { return LoadF64(rec_ + 48); }
PolylineView LaneletView::centerline() const {
  return {rec_ + 80, LoadU32(rec_ + 56)};
}
PackedView<double> LaneletView::elevation_profile() const {
  return {rec_ + 80 + 16 * uint64_t{LoadU32(rec_ + 56)}, LoadU32(rec_ + 60)};
}
PackedView<ElementId> LaneletView::successors() const {
  return {rec_ + 80 + 16 * uint64_t{LoadU32(rec_ + 56)} +
              8 * uint64_t{LoadU32(rec_ + 60)},
          LoadU32(rec_ + 64)};
}
PackedView<ElementId> LaneletView::predecessors() const {
  return {rec_ + 80 + 16 * uint64_t{LoadU32(rec_ + 56)} +
              8 * (uint64_t{LoadU32(rec_ + 60)} + LoadU32(rec_ + 64)),
          LoadU32(rec_ + 68)};
}
PackedView<ElementId> LaneletView::regulatory_ids() const {
  return {rec_ + 80 + 16 * uint64_t{LoadU32(rec_ + 56)} +
              8 * (uint64_t{LoadU32(rec_ + 60)} + LoadU32(rec_ + 64) +
                   LoadU32(rec_ + 68)),
          LoadU32(rec_ + 72)};
}
Lanelet LaneletView::Materialize() const {
  Lanelet ll;
  ll.id = id();
  ll.left_boundary_id = left_boundary_id();
  ll.right_boundary_id = right_boundary_id();
  ll.left_neighbor = left_neighbor();
  ll.right_neighbor = right_neighbor();
  ll.bundle_id = bundle_id();
  ll.speed_limit_mps = speed_limit_mps();
  ll.centerline = centerline().ToLineString();
  ll.elevation_profile = elevation_profile().ToVector();
  ll.successors = successors().ToVector();
  ll.predecessors = predecessors().ToVector();
  ll.regulatory_ids = regulatory_ids().ToVector();
  return ll;
}

ElementId RegulatoryElementView::id() const { return LoadI64(rec_); }
RegulatoryType RegulatoryElementView::type() const {
  return static_cast<RegulatoryType>(LoadU32(rec_ + 24));
}
double RegulatoryElementView::speed_limit_mps() const {
  return LoadF64(rec_ + 8);
}
ElementId RegulatoryElementView::anchor_id() const {
  return LoadI64(rec_ + 16);
}
PackedView<ElementId> RegulatoryElementView::lanelet_ids() const {
  return {rec_ + 32, LoadU32(rec_ + 28)};
}
RegulatoryElement RegulatoryElementView::Materialize() const {
  RegulatoryElement reg;
  reg.id = id();
  reg.type = type();
  reg.speed_limit_mps = speed_limit_mps();
  reg.anchor_id = anchor_id();
  reg.lanelet_ids = lanelet_ids().ToVector();
  return reg;
}

ElementId LaneBundleView::id() const { return LoadI64(rec_); }
ElementId LaneBundleView::from_node() const { return LoadI64(rec_ + 8); }
ElementId LaneBundleView::to_node() const { return LoadI64(rec_ + 16); }
PackedView<ElementId> LaneBundleView::lanelet_ids() const {
  return {rec_ + 32, LoadU32(rec_ + 24)};
}
LaneBundle LaneBundleView::Materialize() const {
  LaneBundle b;
  b.id = id();
  b.from_node = from_node();
  b.to_node = to_node();
  b.lanelet_ids = lanelet_ids().ToVector();
  return b;
}

ElementId MapNodeView::id() const { return LoadI64(rec_); }
Vec2 MapNodeView::position() const {
  return {LoadF64(rec_ + 8), LoadF64(rec_ + 16)};
}
PackedView<ElementId> MapNodeView::bundle_ids() const {
  return {rec_ + 32, LoadU32(rec_ + 24)};
}
MapNode MapNodeView::Materialize() const {
  MapNode n;
  n.id = id();
  n.position = position();
  n.bundle_ids = bundle_ids().ToVector();
  return n;
}

}  // namespace hdmap
