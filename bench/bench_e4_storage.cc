// E4 — Li et al. [60] vs Pannen et al. [44]: HD-map storage.
// Paper: conventional HD maps cost ~10 MB/mile (200 GB / 20,000 miles);
// the compact vector map reaches ~100 KB/mile (300 KB / 3 miles) — a
// two-order-of-magnitude reduction — while preserving navigation.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "planning/route_planner.h"
#include "service/map_service.h"
#include "sim/road_network_generator.h"
#include "storage/snapshot_store.h"

namespace hdmap {
namespace {

int Run() {
  bench::PrintHeader(
      "E4", "Conventional vs compact vector map storage [44, 60]",
      "~10 MB/mile full HD map vs ~100 KB/mile vector map (~100x), with "
      "navigation preserved");

  Rng rng(901);
  HighwayOptions opt;
  opt.length = 10000.0;  // ~6.2 miles.
  opt.sign_spacing = 150.0;
  auto hw = GenerateHighway(opt, rng);
  if (!hw.ok()) return 1;
  HdMap map = std::move(hw).value();

  // Conventional HD map: vector content + the dense survey payload that
  // production maps carry (calibrated to the paper's ~10 MB/mile).
  AttachSurveyPayload(&map, 88.0, rng);

  double miles = opt.length / kMetersPerMile;
  std::string full = SerializeMap(map);
  std::string compact = SerializeCompactMap(map);

  double full_mb_per_mile = full.size() / 1e6 / miles;
  double compact_kb_per_mile = compact.size() / 1e3 / miles;
  bench::PrintRow("conventional HD map (MB/mile)", "10",
                  bench::Fmt("%.1f", full_mb_per_mile));
  bench::PrintRow("compact vector map (KB/mile)", "100",
                  bench::Fmt("%.1f", compact_kb_per_mile));
  bench::PrintRow("reduction factor", "~100x",
                  bench::Fmt("%.0fx", static_cast<double>(full.size()) /
                                          compact.size()));

  // Navigation preserved: the compact map still routes end to end.
  auto restored = DeserializeCompactMap(compact);
  if (!restored.ok()) return 1;
  RoutingGraph graph = RoutingGraph::Build(*restored);
  // Route endpoints: start of one forward chain and that chain's end.
  ElementId from = kInvalidId, to = kInvalidId;
  for (const auto& [id, ll] : restored->lanelets()) {
    if (ll.predecessors.empty() && !ll.successors.empty()) {
      from = id;
      const Lanelet* cur = &ll;
      while (!cur->successors.empty()) {
        cur = restored->FindLanelet(cur->successors.front());
      }
      to = cur->id;
      break;
    }
  }
  bool routed = false;
  double route_len = 0.0;
  if (from != kInvalidId && to != kInvalidId) {
    auto route = PlanRoute(graph, from, to);
    routed = route.ok();
    if (routed) {
      for (ElementId id : route->lanelets) {
        route_len += restored->FindLanelet(id)->Length();
      }
    }
  }
  bench::PrintRow("routing on the compact map",
                  "navigation accuracy maintained",
                  routed ? bench::Fmt("OK, %.1f km route",
                                      route_len / 1000.0)
                         : "FAILED");

  // Tiled distribution of the conventional map (production layout).
  TileStore store(TileStore::Options{.tile_size_m = 512.0});
  if (!store.Build(map).ok()) return 1;
  std::printf("  conventional map tiled: %zu tiles, %.1f MB total\n\n",
              store.NumTiles(), store.TotalBytes() / 1e6);

  // --- Tile-serving hot path: parallel Build, cached LoadRegion. ---
  size_t nthreads = std::max(1u, std::thread::hardware_concurrency());
  std::printf("  tile-serving hot path (%zu hardware threads):\n", nthreads);

  // Build scaling: element assignment is sequential and deterministic,
  // per-tile serialization fans out.
  constexpr int kBuildReps = 5;
  auto time_build = [&](size_t threads) {
    TileStore s(TileStore::Options{.tile_size_m = 256.0});
    bench::Timer t;
    for (int i = 0; i < kBuildReps; ++i) {
      if (!s.Build(map, threads).ok()) return -1.0;
    }
    return t.Seconds() / kBuildReps;
  };
  double build_1 = time_build(1);
  double build_n = time_build(nthreads);
  if (build_1 < 0.0 || build_n < 0.0) return 1;
  std::printf("    Build: %.1f ms @1 thread, %.1f ms @%zu threads (%.2fx)\n",
              build_1 * 1e3, build_n * 1e3, nthreads, build_1 / build_n);

  // Determinism guarantee: identical bytes regardless of thread count.
  TileStore s1(TileStore::Options{.tile_size_m = 256.0});
  TileStore sn(TileStore::Options{.tile_size_m = 256.0});
  if (!s1.Build(map, 1).ok() || !sn.Build(map, nthreads).ok()) return 1;
  bool deterministic = s1.RawTilesCopy() == sn.RawTilesCopy();
  std::printf("    Build bytes 1 vs %zu threads: %s\n", nthreads,
              deterministic ? "identical" : "DIFFER");

  // Repeated LoadRegion over hot tiles: first pass deserializes and fills
  // the LRU cache, later passes are served from it.
  TileStore serving(TileStore::Options{.tile_size_m = 256.0});
  if (!serving.Build(map, nthreads).ok()) return 1;
  Aabb hot_box = map.BoundingBox();
  constexpr int kRegionReps = 10;
  bench::Timer cold_timer;
  auto cold = serving.LoadRegion(hot_box);
  if (!cold.ok()) return 1;
  double cold_s = cold_timer.Seconds();
  bench::Timer hot_timer;
  for (int i = 0; i < kRegionReps; ++i) {
    if (!serving.LoadRegion(hot_box).ok()) return 1;
  }
  double hot_s = hot_timer.Seconds() / kRegionReps;
  TileStoreStats stats = serving.stats();
  std::printf(
      "    LoadRegion: %.1f ms cold, %.1f ms hot (%.2fx); "
      "cache %zu hits / %zu misses\n\n",
      cold_s * 1e3, hot_s * 1e3, cold_s / hot_s, stats.cache_hits,
      stats.cache_misses);

  // --- Tile format v3: zero-copy views vs the legacy v1 decode. ---
  std::printf("  tile format v3 (offset-table views) vs legacy v1 decode:\n");
  TileStore v1_store(TileStore::Options{.tile_size_m = 256.0,
                                        .format = TileFormat::kLegacyV1});
  TileStore v3_store(TileStore::Options{.tile_size_m = 256.0,
                                        .format = TileFormat::kFlatV3});
  if (!v1_store.Build(map, nthreads).ok() ||
      !v3_store.Build(map, nthreads).ok()) {
    return 1;
  }
  auto in_box = v3_store.TilesInBox(hot_box);
  if (!in_box.ok()) return 1;

  // Cold "LoadRegion to first geometry": how long from untouched bytes
  // to geometry in hand, across every tile in the region. v1 must decode
  // each tile in full; v3 validates the offset tables and reads the
  // first centerline point in place. Fresh store copies each rep keep
  // both caches cold.
  constexpr int kColdReps = 5;
  double sink = 0.0;  // Defeats dead-code elimination.
  bench::Timer v1_cold_timer;
  for (int rep = 0; rep < kColdReps; ++rep) {
    TileStore cold_store = v1_store;
    for (const TileId& id : *in_box) {
      auto tile = cold_store.LoadTile(id);
      if (!tile.ok()) return 1;
      if (!tile->lanelets().empty()) {
        sink += tile->lanelets().begin()->second.centerline.front().x;
      }
    }
  }
  double v1_cold_s = v1_cold_timer.Seconds() / kColdReps;
  bench::Timer v3_cold_timer;
  for (int rep = 0; rep < kColdReps; ++rep) {
    TileStore cold_store = v3_store;
    for (const TileId& id : *in_box) {
      auto view = cold_store.GetTileView(id);
      if (!view.ok()) return 1;
      if (view->view.num_lanelets() > 0) {
        sink += view->view.lanelet(0).centerline().front().x;
      }
    }
  }
  double v3_cold_s = v3_cold_timer.Seconds() / kColdReps;
  double v3_speedup = v3_cold_s > 0.0 ? v1_cold_s / v3_cold_s : 0.0;
  std::printf(
      "    cold region to first geometry: v1 %.2f ms, v3 %.3f ms (%.0fx)\n",
      v1_cold_s * 1e3, v3_cold_s * 1e3, v3_speedup);

  // Bytes served verbatim: the network GetTile path ships the pinned
  // frame bytes untouched (CRC travels inside), vs re-decoding per
  // request. Throughput over every tile in the region.
  constexpr int kServeReps = 20;
  size_t verbatim_bytes = 0;
  bench::Timer verbatim_timer;
  for (int rep = 0; rep < kServeReps; ++rep) {
    for (const TileId& id : *in_box) {
      auto bytes = v3_store.RawTileBytes(id);
      if (!bytes.ok()) return 1;
      verbatim_bytes += bytes->size();
      sink += static_cast<double>(bytes->data()[0]);
    }
  }
  double verbatim_s = verbatim_timer.Seconds();
  TileStore decode_store(TileStore::Options{
      .tile_size_m = 256.0, .cache_capacity = 0,
      .format = TileFormat::kLegacyV1});
  if (!decode_store.Build(map, nthreads).ok()) return 1;
  size_t decoded_bytes = 0;
  bench::Timer decode_timer;
  for (const TileId& id : *in_box) {
    auto bytes = decode_store.RawTileBytes(id);
    if (!bytes.ok()) return 1;
    decoded_bytes += bytes->size();
    if (!decode_store.LoadTile(id).ok()) return 1;
  }
  double decode_s = decode_timer.Seconds();
  std::printf(
      "    bytes served verbatim: %.1f GB/s pinned (%zu tiles/rep); "
      "decode path %.3f GB/s\n",
      verbatim_bytes / 1e9 / verbatim_s, in_box->size(),
      decoded_bytes / 1e9 / decode_s);

  // Determinism gate now covers v3: byte-identical tiles across thread
  // counts, and EncodeTileV3 round-trips through the view Materialize.
  TileStore v3_serial(TileStore::Options{.tile_size_m = 256.0,
                                         .format = TileFormat::kFlatV3});
  if (!v3_serial.Build(map, 1).ok()) return 1;
  bool v3_deterministic = v3_serial.RawTilesCopy() == v3_store.RawTilesCopy();
  std::printf("    v3 bytes 1 vs %zu threads: %s  (sink %.1f)\n\n", nthreads,
              v3_deterministic ? "identical" : "DIFFER", sink);

  // --- Durability: checkpoint write, cold recovery, WAL ack overhead. ---
  namespace fsys = std::filesystem;
  fsys::path data_root =
      fsys::temp_directory_path() / "hdmap_bench_e4_storage";
  fsys::remove_all(data_root);
  std::printf("  durability (checkpoint + patch WAL):\n");

  // Checkpoint write: persist the serving store's tiles (temp dir, fsync,
  // atomic rename). fsync dominates real deployments; both modes print.
  double ckpt_mb = serving.TotalBytes() / 1e6;
  double ckpt_fsync_s = 0.0, ckpt_nosync_s = 0.0;
  {
    SnapshotStore store({.data_dir = (data_root / "fsync").string(),
                         .fsync = FsyncMode::kAlways});
    bench::Timer t;
    if (!store.WriteCheckpoint(serving, 1, 0).ok()) return 1;
    ckpt_fsync_s = t.Seconds();
  }
  SnapshotStore ckpt_store({.data_dir = (data_root / "nosync").string(),
                            .fsync = FsyncMode::kNever});
  {
    bench::Timer t;
    if (!ckpt_store.WriteCheckpoint(serving, 1, 0).ok()) return 1;
    ckpt_nosync_s = t.Seconds();
  }
  std::printf(
      "    checkpoint write (%.1f MB, %zu tiles): %.1f ms fsync, "
      "%.1f ms no-fsync\n",
      ckpt_mb, serving.NumTiles(), ckpt_fsync_s * 1e3, ckpt_nosync_s * 1e3);

  // Cold recovery: newest-valid scan + full per-tile validation + stitch.
  size_t skipped = 0;
  bench::Timer rec_timer;
  auto recovered = ckpt_store.LoadNewestValid(
      TileStore::Options{.tile_size_m = 256.0}, &skipped);
  if (!recovered.ok()) return 1;
  double rec_s = rec_timer.Seconds();
  bool recovery_identical = recovered->tiles.RawTilesCopy() ==
                            serving.RawTilesCopy();
  std::printf("    cold recovery (validate + stitch): %.1f ms, bytes %s\n",
              rec_s * 1e3, recovery_identical ? "identical" : "DIFFER");

  // WAL ack overhead on StagePatch: what durability costs the writer per
  // acknowledged patch, before any publish.
  MapPatch wal_patch;
  wal_patch.moved_landmarks.push_back(
      {map.landmarks().begin()->first, {1.0, 2.0, 3.0}});
  constexpr int kStageReps = 50;
  auto time_stage = [&](const std::string& dir, FsyncMode mode) {
    MapService::Options sopt;
    sopt.tile_store.tile_size_m = 256.0;
    sopt.durability.data_dir = dir;
    sopt.durability.fsync = mode;
    MapService service(sopt);
    if (!service.Init(map).ok()) return -1.0;
    bench::Timer t;
    for (int i = 0; i < kStageReps; ++i) {
      if (!service.StagePatch(wal_patch).ok()) return -1.0;
    }
    return t.Seconds() / kStageReps;
  };
  double stage_plain = time_stage("", FsyncMode::kNever);
  double stage_wal = time_stage((data_root / "svc_nosync").string(),
                                FsyncMode::kNever);
  double stage_wal_fsync = time_stage((data_root / "svc_fsync").string(),
                                      FsyncMode::kAlways);
  if (stage_plain < 0.0 || stage_wal < 0.0 || stage_wal_fsync < 0.0) {
    return 1;
  }
  std::printf(
      "    StagePatch ack: %.1f us bare, %.1f us +WAL, %.1f us +WAL+fsync\n",
      stage_plain * 1e6, stage_wal * 1e6, stage_wal_fsync * 1e6);
  fsys::remove_all(data_root);

  // Determinism is a correctness guarantee and gates the exit code; the
  // speedup ratio is timing-dependent (flaky on loaded or low-core
  // machines), so it only warns.
  if (cold_s / hot_s < 2.0) {
    std::printf("  WARNING: hot LoadRegion speedup below 2x target\n");
  }
  if (v3_speedup < 3.0) {
    std::printf(
        "  WARNING: v3 cold-to-first-geometry speedup below 3x target\n");
  }
  if (!deterministic) {
    std::printf("  FAIL: Build output differs across thread counts\n");
  }
  if (!v3_deterministic) {
    std::printf("  FAIL: v3 tile bytes differ across thread counts\n");
  }
  if (!recovery_identical) {
    std::printf("  FAIL: recovered checkpoint bytes differ from source\n");
  }
  return routed && deterministic && v3_deterministic && recovery_identical
             ? 0
             : 1;
}

}  // namespace
}  // namespace hdmap

int main() { return hdmap::Run(); }
