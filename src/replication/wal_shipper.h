#ifndef HDMAP_REPLICATION_WAL_SHIPPER_H_
#define HDMAP_REPLICATION_WAL_SHIPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "net/protocol.h"
#include "replication/replication_log.h"
#include "replication/wire.h"

namespace hdmap {

/// Leader-side shipping engine: one session thread per follower, each
/// tailing the leader's ReplicationLog over the framed-TCP protocol
/// (kReplicate batches; kCatchUp snapshots when a follower's position
/// predates the retained log). Sessions are independent — a dead or slow
/// follower delays only its own stream, never the others and never the
/// leader's write path.
///
/// The follower's ack drives everything: its next_seq positions the
/// stream (rewind on loss, fast-forward on duplicates), its
/// kReplAckNeedCatchUp flag demands a snapshot, and a kReplAckStaleTerm
/// flag (or any higher term in the ack) means this leader was deposed —
/// reported through `on_stale_term` so the node steps down; shipping
/// stops via RequestStop.
///
/// `WaitForAcks` is the semi-synchronous commit gate: a leader write
/// blocks until the record is applied on >= N followers, which is what
/// makes "acked" mean "survives leader death" (the failover controller
/// promotes the most-caught-up follower, which then necessarily holds
/// every acked record).
class WalShipper {
 public:
  /// Data-plane fault site: corrupts an outgoing batch payload (torn
  /// ship). The frame CRC or the batch decoder catches it on the
  /// follower, which nacks; the records are resent intact later.
  static constexpr const char* kShipFaultSite = "repl.ship";
  /// Control-plane fault site: drops one heartbeat send (silence —
  /// exactly what a network blip looks like to the failover detector).
  static constexpr const char* kHeartbeatFaultSite = "repl.heartbeat";

  struct FollowerInfo {
    int node_id = 0;
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    ReplicationLog* log = nullptr;
    /// The node's current term (shared fencing state; stamped into every
    /// batch and snapshot).
    std::atomic<uint64_t>* term = nullptr;
    /// Builds a kCatchUp payload from the node's current state; empty
    /// string when unavailable right now (retried later). Called from
    /// session threads.
    std::function<std::string()> catchup_source;
    /// A follower acked with a term above ours: this leader is deposed.
    /// Called from session threads; must not join them (StepDown may
    /// only RequestStop).
    std::function<void(uint64_t new_term)> on_stale_term;
    /// Leader-side partition simulation: while true, nothing is sent.
    std::function<bool()> partitioned;
    MetricsRegistry* metrics = nullptr;
    FaultInjector* faults = nullptr;
    /// Recorder for the per-exchange "repl.ship" root spans (the context
    /// each batch/heartbeat carries over the wire, so a follower's
    /// net.request spans parent under the leader's shipping trace); null
    /// uses TraceRecorder::Global().
    TraceRecorder* trace = nullptr;
    /// An idle session sends an empty batch this often (liveness signal
    /// for the failover detector).
    uint32_t heartbeat_interval_ms = 20;
    /// Per-request deadline (connect is bounded by the OS; the response
    /// wait by this). A dead follower costs one of these per probe.
    uint32_t io_timeout_ms = 250;
    size_t max_batch_records = 64;
    size_t max_batch_bytes = 4u << 20;
  };

  explicit WalShipper(Options options);
  /// RequestStop + Join.
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Starts a session for the follower (idempotent per node_id).
  void AddFollower(const FollowerInfo& follower);
  bool HasFollower(int node_id) const;
  size_t num_followers() const;

  /// Asks every session to exit at its next wakeup. Safe from any thread,
  /// including a session's own (the stale-term path).
  void RequestStop();
  /// Joins all session threads. Must not be called from a session thread.
  void Join();

  /// Wakes idle sessions (new log records to ship).
  void NotifyAppend();

  /// Followers whose applied (acked) seq has reached `seq`.
  size_t CountAckedAtLeast(uint64_t seq) const;
  /// Blocks until >= min_count followers acked `seq`, or the timeout.
  bool WaitForAcks(uint64_t seq, size_t min_count, uint32_t timeout_ms) const;
  /// Highest acked seq for a follower; 0 when unknown.
  uint64_t AckedSeq(int node_id) const;

  /// One follower's shipping position, for introspection (the kStats
  /// replication document and ClusterInspector lag views).
  struct FollowerProgress {
    int node_id = 0;
    uint64_t acked_seq = 0;
    uint64_t lag_records = 0;
    double lag_ms = 0.0;
  };
  /// Every follower's progress against the current log end. Consistent
  /// per entry (each acked_seq is one atomic read), not across entries.
  std::vector<FollowerProgress> Progress() const;

 private:
  struct Session {
    FollowerInfo info;
    std::thread thread;
    std::atomic<uint64_t> acked_seq{0};
    /// "replication.lag_records{FOLLOWERn}" / "replication.lag_ms{...}"
    /// gauges, resolved in AddFollower; null without a registry.
    Gauge* lag_records_gauge = nullptr;
    Gauge* lag_ms_gauge = nullptr;
  };

  void RunSession(Session* session);
  /// One request/response exchange; returns false on transport failure.
  bool Exchange(class NetClient& client, Session* session,
                NetRequestType type, std::string payload, ReplAck* ack);

  Options opts_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;  // guards sessions_ and backs the two CVs
  mutable std::condition_variable wake_cv_;
  mutable std::condition_variable ack_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;

  Counter* batches_shipped_ = nullptr;
  Counter* records_shipped_ = nullptr;
  Counter* heartbeats_ = nullptr;
  Counter* ship_failures_ = nullptr;
  Counter* catchups_served_ = nullptr;
  Counter* stale_term_acks_ = nullptr;
};

}  // namespace hdmap

#endif  // HDMAP_REPLICATION_WAL_SHIPPER_H_
