# Empty compiler generated dependencies file for line_fitting_test.
# This may be replaced when dependencies are built.
