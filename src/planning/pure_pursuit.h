#ifndef HDMAP_PLANNING_PURE_PURSUIT_H_
#define HDMAP_PLANNING_PURE_PURSUIT_H_

#include "geometry/line_string.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Pure-pursuit path-tracking controller: turns a planned path (global
/// route centerline or a Frenet candidate) into steering commands for
/// the bicycle model — the motion-planning consumer of HD-map routes
/// that the paper's introduction motivates [4, 5].
class PurePursuitController {
 public:
  struct Options {
    double wheelbase = 2.7;
    /// Lookahead distance = base + gain * speed.
    double lookahead_base = 3.0;
    double lookahead_gain = 0.4;
    double max_steering = 0.6;  ///< rad.
    /// Speed control: simple proportional tracking of the target speed.
    double accel_gain = 1.0;
    double max_accel = 2.0;
    double max_decel = 3.0;
  };

  explicit PurePursuitController(const Options& options)
      : options_(options) {}

  struct Command {
    double steering = 0.0;
    double acceleration = 0.0;
    /// Arc length of the lookahead point on the path.
    double lookahead_s = 0.0;
    bool path_finished = false;
  };

  /// Computes the control command for the current vehicle state against
  /// the path. `target_speed` typically comes from the map's speed
  /// limit (or a PCC plan).
  Command Compute(const LineString& path, const Pose2& pose, double speed,
                  double target_speed) const;

 private:
  Options options_;
};

}  // namespace hdmap

#endif  // HDMAP_PLANNING_PURE_PURSUIT_H_
