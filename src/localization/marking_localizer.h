#ifndef HDMAP_LOCALIZATION_MARKING_LOCALIZER_H_
#define HDMAP_LOCALIZATION_MARKING_LOCALIZER_H_

#include <vector>

#include "core/hd_map.h"
#include "localization/particle_filter.h"
#include "sim/sensors.h"

namespace hdmap {

/// Lane-marking-based map-matching localizer (Ghallabi et al. [50]):
/// segments high-intensity LiDAR returns, extracts lane markings, and
/// matches them against the HD map inside a particle filter.
class MarkingLocalizer {
 public:
  struct Options {
    ParticleFilter::Options filter;
    /// Intensity threshold separating paint from road surface.
    double intensity_threshold = 0.5;
    /// Measurement model sigma: distance of an observed marking point to
    /// the nearest map marking.
    double matching_sigma = 0.3;  // meters
    /// Cap on marking points scored per update (subsampled for speed).
    int max_points_per_update = 60;
    /// Map markings are looked up within this radius of the estimate.
    double map_query_radius = 40.0;
  };

  MarkingLocalizer(const HdMap* map, const Options& options);

  /// Initializes the belief around `initial` (e.g., a GPS fix).
  void Init(const Pose2& initial, double position_spread,
            double heading_spread, Rng& rng);

  /// Dead-reckoning step from odometry.
  void Predict(double distance, double heading_change, Rng& rng);

  /// Measurement update from one LiDAR marking scan (vehicle frame).
  void Update(const std::vector<MarkingPoint>& scan, Rng& rng);

  Pose2 Estimate() const { return filter_.Estimate(); }
  double PositionSpread() const { return filter_.PositionSpread(); }

  /// Fraction of scored marking points within 2*matching_sigma of a map
  /// marking at the current estimate — the localization-health signal
  /// consumed by change detection [42].
  double last_inlier_ratio() const { return last_inlier_ratio_; }
  double last_mean_residual() const { return last_mean_residual_; }

 private:
  const HdMap* map_;
  Options options_;
  ParticleFilter filter_;
  double last_inlier_ratio_ = 1.0;
  double last_mean_residual_ = 0.0;
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_MARKING_LOCALIZER_H_
