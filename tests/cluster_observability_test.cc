// Distributed-observability tests: a live 3-node replication cluster on
// loopback TCP with a ClusterInspector polling every node's kStats
// document, plus the cross-process trace propagation acceptance path
// (one client request -> one merged multi-process Chrome trace).
//
// The tier-2 `cluster_observability` target reruns the chaos scenario
// with HDMAP_FUZZ_ITERS >= 300 kill/partition/heal actions while the
// inspector polls concurrently — the no-torn-reads check.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/event_log.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/trace.h"
#include "net/protocol.h"
#include "net/tile_server.h"
#include "obs/cluster_inspector.h"
#include "obs/json.h"
#include "replication/failover_controller.h"
#include "replication/node.h"
#include "service/map_service.h"
#include "tests/test_worlds.h"

namespace hdmap {
namespace {

size_t ChaosActions() {
  if (const char* env = std::getenv("HDMAP_FUZZ_ITERS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 25;  // Tier-1 smoke size.
}

MapService::Options SmallTileOptions() {
  MapService::Options opt;
  opt.tile_store.tile_size_m = 100.0;
  return opt;
}

MapPatch LandmarkPatch(uint64_t id) {
  MapPatch patch;
  Landmark lm;
  lm.id = id;
  lm.position = {static_cast<double>(id % 97), static_cast<double>(id % 89),
                 0.0};
  patch.added_landmarks.push_back(lm);
  return patch;
}

/// N-node loopback cluster with a FailoverController, optionally giving
/// every node its own TraceRecorder (the stand-in for per-process rings
/// in the merged-trace test).
class ObsCluster {
 public:
  explicit ObsCluster(int n, bool per_node_recorders = false,
                      uint64_t fault_seed = 0x5EED0B5Eu)
      : faults_(fault_seed), controller_([] {
          FailoverController::Options co;
          co.poll_interval_ms = 10;
          co.leader_timeout_ms = 100;
          return co;
        }()) {
    HdMap world = StraightRoad(300.0);
    for (int i = 0; i < n; ++i) {
      if (per_node_recorders) {
        TraceRecorder::Options to;
        to.enabled = true;
        to.sample_every_n = 1;
        recorders_.push_back(std::make_unique<TraceRecorder>(to));
      }
      ReplicationNode::Options no;
      no.node_id = i;
      no.service = SmallTileOptions();
      no.heartbeat_interval_ms = 10;
      no.io_timeout_ms = 150;
      no.min_ack_replicas = 1;
      no.ack_timeout_ms = 1500;
      no.faults = &faults_;
      if (per_node_recorders) no.server.trace = recorders_[i].get();
      nodes_.push_back(std::make_unique<ReplicationNode>(no));
      EXPECT_TRUE(nodes_.back()->Start(world).ok());
      controller_.AddNode(nodes_.back().get());
    }
    EXPECT_TRUE(controller_.Start().ok());
  }

  ~ObsCluster() {
    controller_.Stop();
    for (auto& node : nodes_) node->Halt();
  }

  int size() const { return static_cast<int>(nodes_.size()); }
  ReplicationNode* node(int i) { return nodes_[i].get(); }
  ReplicationNode* leader() { return controller_.leader(); }
  TraceRecorder* recorder(int i) { return recorders_[i].get(); }
  FaultInjector& faults() { return faults_; }

  std::vector<ClusterInspector::NodeTarget> Targets() const {
    std::vector<ClusterInspector::NodeTarget> targets;
    for (const auto& node : nodes_) {
      targets.push_back({node->node_id(), "127.0.0.1", node->port()});
    }
    return targets;
  }

  bool WriteAcked(uint64_t landmark_id) {
    ReplicationNode* l = leader();
    if (l == nullptr || !l->alive()) return false;
    if (!l->StagePatch(LandmarkPatch(landmark_id)).ok()) return false;
    return l->Publish().ok();
  }

  ReplicationNode* WaitForLeader(uint32_t timeout_ms = 10000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      ReplicationNode* l = leader();
      if (l != nullptr && l->alive() &&
          l->role() == ReplicationNode::Role::kLeader) {
        return l;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return nullptr;
  }

  bool WaitConverged(uint32_t timeout_ms = 15000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (Converged()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Converged();
  }

 private:
  bool Converged() {
    ReplicationNode* l = leader();
    if (l == nullptr || !l->alive() ||
        l->role() != ReplicationNode::Role::kLeader) {
      return false;
    }
    auto snap = l->service().snapshot();
    if (snap == nullptr) return false;
    auto leader_tiles = snap->tiles.RawTilesCopy();
    uint64_t version = l->service().version();
    for (auto& node : nodes_) {
      if (node.get() == l || !node->alive() || node->partitioned()) continue;
      if (node->service().version() != version) return false;
      auto node_snap = node->service().snapshot();
      if (node_snap == nullptr ||
          node_snap->tiles.RawTilesCopy() != leader_tiles) {
        return false;
      }
    }
    return true;
  }

  FaultInjector faults_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  std::vector<std::unique_ptr<ReplicationNode>> nodes_;
  FailoverController controller_;
};

// ---------------------------------------------------------------------------
// Acceptance: one client request, one merged multi-process trace.

TEST(ClusterObservabilityTest, MergedTraceAcrossThreeNodeCluster) {
  // The client records into the process-global ring; each node gets its
  // own recorder, standing in for three separate server processes.
  TraceRecorder& client_recorder = TraceRecorder::Global();
  TraceRecorder::Options to;
  to.enabled = true;
  to.sample_every_n = 1;
  client_recorder.Configure(to);

  uint64_t client_trace = 0;
  {
    ObsCluster cluster(3, /*per_node_recorders=*/true);
    ReplicationNode* leader = cluster.WaitForLeader();
    ASSERT_NE(leader, nullptr);
    ASSERT_TRUE(cluster.WriteAcked(910001));

    client_recorder.Clear();  // Drop shipper-side client spans: isolate ours.
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", leader->port()).ok());
    auto snap = leader->service().snapshot();
    ASSERT_NE(snap, nullptr);
    auto response = client.GetRegion(snap->map.BoundingBox());
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->code, NetResponseCode::kOk);

    // Client side: the call rooted a fresh trace.
    for (const TraceEvent& event : client_recorder.Snapshot()) {
      if (std::string_view(event.name) == "net_client.call" &&
          event.parent_span_id == 0) {
        client_trace = event.trace_id;
      }
    }
    ASSERT_NE(client_trace, 0u);

    // Leader side: its net.request span joined the client's trace across
    // the process boundary (same trace id, non-root parent). The server
    // records its span after the response is already on the wire, so
    // poll briefly instead of racing it.
    bool server_joined = false;
    auto span_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!server_joined &&
           std::chrono::steady_clock::now() < span_deadline) {
      for (const TraceEvent& event : cluster.recorder(leader->node_id())
                                         ->Snapshot()) {
        if (std::string_view(event.name) == "net.request" &&
            event.trace_id == client_trace && event.parent_span_id != 0) {
          server_joined = true;
        }
      }
      if (!server_joined) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    EXPECT_TRUE(server_joined);

    // Replication plane: follower net.request spans joined the leader's
    // repl.ship traces the same way.
    std::set<uint64_t> ship_traces;
    for (const TraceEvent& event : cluster.recorder(leader->node_id())
                                       ->Snapshot()) {
      if (std::string_view(event.name) == "repl.ship") {
        ship_traces.insert(event.trace_id);
      }
    }
    ASSERT_FALSE(ship_traces.empty());
    bool follower_joined = false;
    span_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!follower_joined &&
           std::chrono::steady_clock::now() < span_deadline) {
      for (int i = 0; i < cluster.size(); ++i) {
        if (i == leader->node_id()) continue;
        for (const TraceEvent& event : cluster.recorder(i)->Snapshot()) {
          if (std::string_view(event.name) == "net.request" &&
              ship_traces.count(event.trace_id) != 0) {
            follower_joined = true;
          }
        }
      }
      if (!follower_joined) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    EXPECT_TRUE(follower_joined);

    // The merged export is one valid JSON document with one process track
    // per participant, and the client's trace id appears under at least
    // two distinct pids (client + leader).
    std::vector<std::string> exports;
    exports.push_back(client_recorder.ExportChromeTraceJson(100, "client"));
    for (int i = 0; i < cluster.size(); ++i) {
      exports.push_back(cluster.recorder(i)->ExportChromeTraceJson(
          static_cast<uint32_t>(i + 1), "node-" + std::to_string(i)));
    }
    std::string merged = ClusterInspector::MergeChromeTraceJson(exports);
    auto parsed = ParseJson(merged);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const JsonValue* events = parsed->Find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::set<uint64_t> process_tracks;
    std::set<uint64_t> pids_with_client_trace;
    std::string client_trace_str = std::to_string(client_trace);
    for (const JsonValue& event : events->array) {
      if (event.GetString("name") == "process_name") {
        process_tracks.insert(event.GetU64("pid"));
        continue;
      }
      const JsonValue* args = event.Find("args");
      if (args != nullptr && args->GetString("trace_id") == client_trace_str) {
        pids_with_client_trace.insert(event.GetU64("pid"));
      }
    }
    EXPECT_EQ(process_tracks.size(), 4u);
    EXPECT_GE(pids_with_client_trace.size(), 2u);
  }
  client_recorder.Configure(TraceRecorder::Options{});  // Back to disabled.
}

// ---------------------------------------------------------------------------
// Cluster aggregation.

TEST(ClusterObservabilityTest, InspectorSeesHealthRolesAndZeroLagAtRest) {
  ObsCluster cluster(3);
  ASSERT_NE(cluster.WaitForLeader(), nullptr);
  for (uint64_t id = 920001; id < 920006; ++id) {
    ASSERT_TRUE(cluster.WriteAcked(id));
  }
  ASSERT_TRUE(cluster.WaitConverged());

  MetricsRegistry registry;
  ClusterInspector::Options io;
  io.nodes = cluster.Targets();
  io.metrics = &registry;
  ClusterInspector inspector(io);

  // Acked writes mean the followers hold everything; lag converges to 0
  // once the next ack round lands.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  ClusterInspector::ClusterView view;
  while (std::chrono::steady_clock::now() < deadline) {
    inspector.PollOnce();
    view = inspector.View();
    if (view.reachable_nodes == 3 && view.max_lag_records == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(view.reachable_nodes, 3u);
  EXPECT_EQ(view.max_lag_records, 0u);
  EXPECT_DOUBLE_EQ(view.max_lag_ms, 0.0);

  int leaders = 0;
  for (const ClusterInspector::NodeStats& node : view.nodes) {
    ASSERT_TRUE(node.reachable);
    EXPECT_EQ(node.health, "SERVING");
    EXPECT_EQ(node.label, "node-" + std::to_string(node.node_id));
    if (node.role == "LEADER") {
      ++leaders;
      EXPECT_EQ(node.followers.size(), 2u);
    }
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_TRUE(view.split_brain_terms.empty());
  EXPECT_EQ(registry.GetGauge("cluster.nodes_reachable")->value(), 3.0);
  EXPECT_EQ(registry.GetGauge("cluster.split_brain_terms")->value(), 0.0);
}

TEST(ClusterObservabilityTest, LagConvergesAfterSeededFailover) {
  ObsCluster cluster(3);
  ReplicationNode* first_leader = cluster.WaitForLeader();
  ASSERT_NE(first_leader, nullptr);
  for (uint64_t id = 930001; id < 930004; ++id) {
    ASSERT_TRUE(cluster.WriteAcked(id));
  }

  ClusterInspector::Options io;
  io.nodes = cluster.Targets();
  ClusterInspector inspector(io);

  // Seeded failover: kill the leader, let the controller promote, write
  // through the new leader, then bring the old one back.
  int dead_id = first_leader->node_id();
  first_leader->Halt();
  ReplicationNode* new_leader = cluster.WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader->node_id(), dead_id);
  auto write_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t wrote = 0;
  uint64_t id = 930010;
  while (wrote < 3 && std::chrono::steady_clock::now() < write_deadline) {
    if (cluster.WriteAcked(id++)) ++wrote;
  }
  ASSERT_EQ(wrote, 3u);
  ASSERT_TRUE(cluster.node(dead_id)->Restart().ok());
  ASSERT_TRUE(cluster.WaitConverged());

  // The inspector's lag view settles to zero across every follower.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  ClusterInspector::ClusterView view;
  while (std::chrono::steady_clock::now() < deadline) {
    inspector.PollOnce();
    view = inspector.View();
    if (view.reachable_nodes == 3 && view.max_lag_records == 0 &&
        !view.leaders_by_term.empty()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(view.reachable_nodes, 3u);
  EXPECT_EQ(view.max_lag_records, 0u);
  EXPECT_TRUE(view.split_brain_terms.empty());
  // One claimant per term, ever — the anti-split-brain ledger.
  for (const auto& [term, claimants] : view.leaders_by_term) {
    EXPECT_EQ(claimants.size(), 1u) << "term " << term;
  }
}

TEST(ClusterObservabilityTest, FailoverTimelineJoinsAcrossNodes) {
  ObsCluster cluster(3);
  ReplicationNode* first_leader = cluster.WaitForLeader();
  ASSERT_NE(first_leader, nullptr);
  ASSERT_TRUE(cluster.WriteAcked(940001));

  int dead_id = first_leader->node_id();
  first_leader->Halt();
  ReplicationNode* new_leader = cluster.WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_TRUE(cluster.node(dead_id)->Restart().ok());
  ASSERT_TRUE(cluster.WaitConverged());

  ClusterInspector::Options io;
  io.nodes = cluster.Targets();
  ClusterInspector inspector(io);
  inspector.PollOnce();
  ClusterInspector::ClusterView view = inspector.View();

  // The timeline holds the promotion (from the new leader) and the
  // restarted node's catch-up — events from different nodes, one
  // wall-clock-ordered sequence.
  bool promotion = false;
  bool catch_up = false;
  std::set<int> contributing_nodes;
  for (const ClusterInspector::TimelineEvent& entry : view.failover_timeline) {
    contributing_nodes.insert(entry.node_id);
    if (entry.event.type == EventLog::Type::kFailoverComplete &&
        entry.node_id == new_leader->node_id()) {
      promotion = true;
    }
    if (entry.event.type == EventLog::Type::kReplicaCatchUp &&
        entry.node_id == dead_id) {
      catch_up = true;
    }
  }
  EXPECT_TRUE(promotion);
  EXPECT_TRUE(catch_up);
  EXPECT_GE(contributing_nodes.size(), 2u);
  for (size_t i = 1; i < view.failover_timeline.size(); ++i) {
    EXPECT_LE(view.failover_timeline[i - 1].event.unix_ms,
              view.failover_timeline[i].event.unix_ms);
  }

  // A second poll must not duplicate timeline entries.
  size_t before = view.failover_timeline.size();
  inspector.PollOnce();
  EXPECT_EQ(inspector.View().failover_timeline.size(), before);
}

TEST(ClusterObservabilityTest, SplitBrainDetectedFromConflictingClaims) {
  // Two standalone servers each claiming leadership of term 5 — the
  // pathology the replication stack prevents, fabricated at the kStats
  // layer to prove the inspector would catch it.
  MapService service_a(SmallTileOptions());
  MapService service_b(SmallTileOptions());
  ASSERT_TRUE(service_a.Init(StraightRoad(200.0)).ok());
  ASSERT_TRUE(service_b.Init(StraightRoad(200.0)).ok());
  auto claim = [](int node_id) {
    return "{\"node_id\":" + std::to_string(node_id) +
           ",\"role\":\"LEADER\",\"term\":5,\"applied_seq\":1,"
           "\"last_publish_seq\":1,\"log_start_seq\":1,\"log_end_seq\":1,"
           "\"ms_since_leader_contact\":0.0,\"followers\":[]}";
  };
  TileServer::Options oa;
  oa.stats_label = "node-0";
  oa.replication_status_json = [&] { return claim(0); };
  TileServer::Options ob;
  ob.stats_label = "node-1";
  ob.replication_status_json = [&] { return claim(1); };
  TileServer server_a(service_a, oa);
  TileServer server_b(service_b, ob);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());

  ClusterInspector::Options io;
  io.nodes = {{0, "127.0.0.1", server_a.port()},
              {1, "127.0.0.1", server_b.port()}};
  ClusterInspector inspector(io);
  inspector.PollOnce();
  ClusterInspector::ClusterView view = inspector.View();
  ASSERT_EQ(view.split_brain_terms.size(), 1u);
  EXPECT_EQ(view.split_brain_terms[0], 5u);
  ASSERT_EQ(view.leaders_by_term.at(5).size(), 2u);
}

// ---------------------------------------------------------------------------
// Introspection plane.

TEST(ClusterObservabilityTest, PrometheusScrapeExposesReplicationFamilies) {
  ObsCluster cluster(3);
  ReplicationNode* leader = cluster.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(cluster.WriteAcked(950001));

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", leader->port()).ok());
  auto response = client.FetchStats(NetStatsFormat::kPrometheus);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, NetResponseCode::kOk);
  const std::string& text = response->payload;

  // The new replication families are present with per-follower labels and
  // the ack-wait histogram recorded at least one write.
  EXPECT_NE(text.find("# TYPE hdmap_replication_lag_records gauge"),
            std::string::npos);
  EXPECT_NE(text.find("hdmap_replication_lag_records{tag=\"FOLLOWER"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hdmap_replication_lag_ms gauge"),
            std::string::npos);
  EXPECT_NE(text.find("hdmap_replication_ack_wait_seconds_count"),
            std::string::npos);
}

TEST(ClusterObservabilityTest, MetricsNamesLintCleanAcrossCluster) {
  ObsCluster cluster(3);
  ASSERT_NE(cluster.WaitForLeader(), nullptr);
  ASSERT_TRUE(cluster.WriteAcked(960001));

  MetricsRegistry inspector_registry;
  ClusterInspector::Options io;
  io.nodes = cluster.Targets();
  io.metrics = &inspector_registry;
  ClusterInspector inspector(io);
  inspector.PollOnce();

  // Repo naming convention: lowercase dotted subsystem.verb, optional
  // {UPPER_TAG} suffix — enforced over every live registry so a typo'd
  // instrument name fails the suite, not a dashboard.
  std::regex pattern("^[a-z][a-z0-9_.]*(\\{[A-Z0-9_]+\\})?$");
  auto lint = [&pattern](const MetricsRegistry& registry,
                         const std::string& where) {
    for (const std::string& name : registry.Names()) {
      EXPECT_TRUE(std::regex_match(name, pattern))
          << where << ": bad metric name '" << name << "'";
    }
  };
  for (int i = 0; i < cluster.size(); ++i) {
    lint(cluster.node(i)->service().metrics(), "node-" + std::to_string(i));
  }
  lint(inspector_registry, "inspector");
}

// ---------------------------------------------------------------------------
// Chaos with a live inspector (tier-2 at full size).

TEST(ClusterObservabilityTest, ChaosWithLiveInspectorNoTornReads) {
  const size_t actions = ChaosActions();
  Rng rng(0x0B5E55EDu);
  ObsCluster cluster(3);
  ASSERT_NE(cluster.WaitForLeader(), nullptr);

  MetricsRegistry registry;
  ClusterInspector::Options io;
  io.nodes = cluster.Targets();
  io.poll_interval_ms = 5;
  io.io_timeout_ms = 250;
  io.metrics = &registry;
  ClusterInspector inspector(io);
  inspector.Start();
  // The no-torn-reads invariants below assume at least one completed
  // poll; View() is legitimately empty until the poller's first pass.
  auto first_poll =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (inspector.View().poll_seq == 0 &&
         std::chrono::steady_clock::now() < first_poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(inspector.View().poll_seq, 1u);

  uint64_t next_landmark = 970000;
  uint64_t last_poll_seq = 0;
  auto all_alive = [&] {
    for (int i = 0; i < cluster.size(); ++i) {
      if (!cluster.node(i)->alive() || cluster.node(i)->partitioned()) {
        return false;
      }
    }
    return true;
  };

  for (size_t action = 0; action < actions; ++action) {
    int pick = rng.UniformInt(0, 7);
    switch (pick) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Writes dominate the schedule.
        cluster.WriteAcked(next_landmark++);
        break;
      }
      case 4: {  // Kill the leader (single-failure tolerance).
        if (all_alive()) {
          ReplicationNode* l = cluster.leader();
          if (l != nullptr) l->Halt();
        }
        break;
      }
      case 5: {  // Partition a random node.
        if (all_alive()) {
          cluster.node(rng.UniformInt(0, 2))->SetPartitioned(true);
        }
        break;
      }
      case 6:
      case 7: {  // Heal everything.
        for (int i = 0; i < cluster.size(); ++i) {
          cluster.node(i)->SetPartitioned(false);
          if (!cluster.node(i)->alive()) {
            ASSERT_TRUE(cluster.node(i)->Restart().ok());
          }
        }
        break;
      }
    }

    // The view must never tear, whatever the cluster is doing: full node
    // list, monotone poll counter, and no false split-brain (the
    // controller guarantees one leader per term; the inspector must not
    // invent a second one from a torn poll).
    ClusterInspector::ClusterView view = inspector.View();
    ASSERT_EQ(view.nodes.size(), 3u);
    ASSERT_GE(view.poll_seq, last_poll_seq);
    last_poll_seq = view.poll_seq;
    ASSERT_TRUE(view.split_brain_terms.empty())
        << "false split-brain at action " << action;
    for (const ClusterInspector::NodeStats& node : view.nodes) {
      if (!node.reachable) continue;
      ASSERT_TRUE(node.health == "SERVING" || node.health == "DEGRADED");
    }
  }

  // Settle: heal, converge, and watch the inspector agree.
  for (int i = 0; i < cluster.size(); ++i) {
    cluster.node(i)->SetPartitioned(false);
    if (!cluster.node(i)->alive()) {
      ASSERT_TRUE(cluster.node(i)->Restart().ok());
    }
  }
  ASSERT_NE(cluster.WaitForLeader(), nullptr);
  ASSERT_TRUE(cluster.WaitConverged());
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  ClusterInspector::ClusterView view;
  while (std::chrono::steady_clock::now() < deadline) {
    view = inspector.View();
    if (view.reachable_nodes == 3 && view.max_lag_records == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  inspector.Stop();
  EXPECT_EQ(view.reachable_nodes, 3u);
  EXPECT_EQ(view.max_lag_records, 0u);
  EXPECT_TRUE(view.split_brain_terms.empty());
  EXPECT_GE(registry.GetCounter("cluster.polls")->value(), 1u);
}

}  // namespace
}  // namespace hdmap
