#ifndef HDMAP_LOCALIZATION_PARTICLE_FILTER_H_
#define HDMAP_LOCALIZATION_PARTICLE_FILTER_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "geometry/pose2.h"

namespace hdmap {

/// Generic SE(2) particle filter: the shared machinery behind the
/// lane-marking localizer [50], the raster localizer [23] and the boosted
/// change detector [42].
class ParticleFilter {
 public:
  struct Particle {
    Pose2 pose;
    double weight = 1.0;
  };

  struct Options {
    int num_particles = 300;
    /// Process noise applied per Predict step.
    double position_noise = 0.05;   ///< m per meter traveled.
    double heading_noise = 0.01;    ///< rad per step.
    /// Resample when effective sample size falls below this fraction.
    double resample_threshold = 0.5;
  };

  ParticleFilter() : ParticleFilter(Options{}) {}
  explicit ParticleFilter(const Options& options) : options_(options) {}

  /// Initializes particles around `initial` with the given spreads.
  void Init(const Pose2& initial, double position_spread,
            double heading_spread, Rng& rng);

  /// Motion update: moves every particle by `distance` along its own
  /// heading plus `heading_change`, with process noise.
  void Predict(double distance, double heading_change, Rng& rng);

  /// Measurement update: multiplies weights by `likelihood(pose)` and
  /// normalizes; resamples when the effective sample size degenerates.
  void Update(const std::function<double(const Pose2&)>& likelihood,
              Rng& rng);

  /// Weighted mean pose (circular mean for heading).
  Pose2 Estimate() const;

  /// Weighted positional spread (RMS distance from the mean) — the filter
  /// health metric used by change detection [42].
  double PositionSpread() const;

  /// Effective sample size in [1, N].
  double EffectiveSampleSize() const;

  const std::vector<Particle>& particles() const { return particles_; }

 private:
  void Normalize();
  void Resample(Rng& rng);

  Options options_;
  std::vector<Particle> particles_;
};

}  // namespace hdmap

#endif  // HDMAP_LOCALIZATION_PARTICLE_FILTER_H_
