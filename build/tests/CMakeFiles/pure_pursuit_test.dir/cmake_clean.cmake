file(REMOVE_RECURSE
  "CMakeFiles/pure_pursuit_test.dir/pure_pursuit_test.cc.o"
  "CMakeFiles/pure_pursuit_test.dir/pure_pursuit_test.cc.o.d"
  "pure_pursuit_test"
  "pure_pursuit_test.pdb"
  "pure_pursuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pure_pursuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
