#ifndef HDMAP_MAINTENANCE_INCREMENTAL_FUSION_H_
#define HDMAP_MAINTENANCE_INCREMENTAL_FUSION_H_

#include <map>
#include <vector>

#include "core/ids.h"
#include "geometry/vec2.h"

namespace hdmap {

/// Incremental HD-map element fusion (Liu et al. [43]): each element's
/// position estimate is updated from new sensor measurements with a
/// Kalman step; a time-decay term inflates stale covariance so the map
/// quickly re-adapts after environmental changes; semantic confidence is
/// tracked alongside; unmatched measurements are queued for future
/// matching attempts.
class IncrementalFuser {
 public:
  struct Options {
    double measurement_sigma = 0.6;
    /// Covariance inflation per day without observation (time decay).
    double decay_variance_per_day = 0.04;
    /// Confidence gain on a semantic-consistent observation.
    double confidence_gain = 0.2;
    double confidence_loss = 0.3;
    /// Matching gate for assigning measurements to elements.
    double match_radius = 3.0;
    /// Unmatched measurements are kept this many attempts before drop.
    int max_feedback_attempts = 3;
  };

  struct ElementEstimate {
    Vec2 position;
    double variance = 1.0;
    double semantic_confidence = 0.5;
    double last_update_day = 0.0;
  };

  struct Measurement {
    Vec2 position;
    bool semantic_match = true;  ///< Class agreed with the map element.
    double day = 0.0;
  };

  explicit IncrementalFuser(const Options& options) : options_(options) {}

  /// Registers a map element with its current (map) position.
  void AddElement(ElementId id, const Vec2& position,
                  double initial_variance = 0.25);

  /// Fuses one measurement: matched to the nearest element within the
  /// gate, otherwise parked in the feedback queue for later attempts.
  void Fuse(const Measurement& measurement);

  /// Retries the feedback queue against the current estimates; drops
  /// entries that exceeded max_feedback_attempts.
  void RetryFeedbackQueue();

  const ElementEstimate* Find(ElementId id) const;
  const std::map<ElementId, ElementEstimate>& elements() const {
    return elements_;
  }
  size_t feedback_queue_size() const { return feedback_queue_.size(); }

 private:
  /// Applies time decay up to `day`, then the Kalman measurement update.
  void UpdateElement(ElementEstimate* e, const Measurement& m);
  bool TryMatch(const Measurement& m);

  Options options_;
  std::map<ElementId, ElementEstimate> elements_;
  std::vector<std::pair<Measurement, int>> feedback_queue_;
};

}  // namespace hdmap

#endif  // HDMAP_MAINTENANCE_INCREMENTAL_FUSION_H_
