#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/tile_store.h"
#include "sim/road_network_generator.h"

namespace hdmap {
namespace {

HdMap SmallTown(uint64_t seed = 11) {
  Rng rng(seed);
  TownOptions opt;
  opt.grid_rows = 2;
  opt.grid_cols = 3;
  opt.block_size = 120.0;
  auto town = GenerateTown(opt, rng);
  EXPECT_TRUE(town.ok()) << town.status().ToString();
  return std::move(town).value();
}

/// Two lanelets in tiles far apart (tile size 100: tile (0,0) and (5,0)),
/// plus one regulatory element referencing both.
HdMap TwoTileWorldWithSharedRegElement() {
  HdMap map;
  Lanelet a;
  a.id = 1;
  a.centerline = LineString({{10, 10}, {20, 10}});
  a.regulatory_ids = {900};
  Lanelet b;
  b.id = 2;
  b.centerline = LineString({{510, 10}, {520, 10}});
  b.regulatory_ids = {900};
  EXPECT_TRUE(map.AddLanelet(a).ok());
  EXPECT_TRUE(map.AddLanelet(b).ok());
  RegulatoryElement reg;
  reg.id = 900;
  reg.type = RegulatoryType::kSpeedLimit;
  reg.speed_limit_mps = 8.0;
  reg.lanelet_ids = {1, 2};
  EXPECT_TRUE(map.AddRegulatoryElement(reg).ok());
  return map;
}

TEST(TileStoreRegressionTest, RegulatoryElementRidesWithEveryLanelet) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());
  ASSERT_GE(store.NumTiles(), 2u);

  // The element must be present in the tile of each referenced lanelet,
  // not just the first one's.
  for (const Vec2& anchor : {Vec2{15, 10}, Vec2{515, 10}}) {
    auto tile = store.LoadTile(store.TileAt(anchor));
    ASSERT_TRUE(tile.ok()) << tile.status().ToString();
    EXPECT_NE(tile->FindRegulatoryElement(900), nullptr)
        << "element missing from tile at (" << anchor.x << "," << anchor.y
        << ")";
  }

  // A region covering only the *second* lanelet still sees the element
  // (this was silently lost before the fix).
  auto region_b = store.LoadRegion(Aabb({500, 0}, {530, 20}));
  ASSERT_TRUE(region_b.ok());
  EXPECT_NE(region_b->FindLanelet(2), nullptr);
  EXPECT_NE(region_b->FindRegulatoryElement(900), nullptr);

  auto region_a = store.LoadRegion(Aabb({0, 0}, {30, 20}));
  ASSERT_TRUE(region_a.ok());
  EXPECT_NE(region_a->FindRegulatoryElement(900), nullptr);
}

TEST(TileStoreRegressionTest, PartialRegionReportsUnresolvedRegRefs) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());

  // Region covering only lanelet 2: the element is kept, and its dangling
  // reference to lanelet 1 is reported instead of silently ignored.
  RegionReport report;
  auto region = store.LoadRegion(Aabb({500, 0}, {530, 20}), &report);
  ASSERT_TRUE(region.ok());
  ASSERT_EQ(report.unresolved_regulatory_refs.size(), 1u);
  EXPECT_EQ(report.unresolved_regulatory_refs[0].first, 900u);
  EXPECT_EQ(report.unresolved_regulatory_refs[0].second, 1u);

  // The full region resolves everything.
  auto full = store.LoadRegion(map.BoundingBox(), &report);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(report.unresolved_regulatory_refs.empty());
}

TEST(TileStoreTest, BuildOutputIsIdenticalAcrossThreadCounts) {
  HdMap map = SmallTown();
  TileStore serial(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(serial.Build(map, 1).ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    TileStore parallel(TileStore::Options{.tile_size_m = 128.0});
    ASSERT_TRUE(parallel.Build(map, threads).ok());
    ASSERT_EQ(parallel.NumTiles(), serial.NumTiles());
    EXPECT_EQ(parallel.RawTilesCopy(), serial.RawTilesCopy())
        << "tile bytes differ with " << threads << " threads";
  }
}

TEST(TileStoreTest, ParallelRegionLoadMatchesSerial) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());
  Aabb box = map.BoundingBox();
  auto serial = store.LoadRegion(box, nullptr, 1);
  auto parallel = store.LoadRegion(box, nullptr, 8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(SerializeMap(*serial), SerializeMap(*parallel));
}

TEST(TileStoreTest, CacheHitsOnRepeatedLoads) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());
  ASSERT_GT(store.NumTiles(), 1u);

  auto present = store.TilesInBox(map.BoundingBox());
  ASSERT_TRUE(present.ok());
  ASSERT_FALSE(present->empty());
  TileId tile = present->front();
  ASSERT_TRUE(store.LoadTile(tile).ok());
  TileStoreStats stats = store.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 1u);

  ASSERT_TRUE(store.LoadTile(tile).ok());
  stats = store.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // A whole-map region load deserializes each remaining tile once...
  ASSERT_TRUE(store.LoadRegion(map.BoundingBox()).ok());
  stats = store.stats();
  EXPECT_EQ(stats.cache_misses, store.NumTiles());
  // ...and a repeat is served fully from cache.
  ASSERT_TRUE(store.LoadRegion(map.BoundingBox()).ok());
  TileStoreStats hot = store.stats();
  EXPECT_EQ(hot.cache_misses, stats.cache_misses);
  EXPECT_EQ(hot.cache_hits, stats.cache_hits + store.NumTiles());
}

TEST(TileStoreTest, PutTileInvalidatesCacheEntry) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());
  TileId tile = store.TileAt({15, 10});
  ASSERT_TRUE(store.LoadTile(tile).ok());  // Warm the cache.

  HdMap replacement;
  Lanelet moved;
  moved.id = 77;
  moved.centerline = LineString({{12, 12}, {18, 12}});
  ASSERT_TRUE(replacement.AddLanelet(moved).ok());
  store.PutTile(tile, replacement);

  auto reloaded = store.LoadTile(tile);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_NE(reloaded->FindLanelet(77), nullptr);  // Fresh bytes, not cache.
  EXPECT_EQ(reloaded->FindLanelet(1), nullptr);
}

TEST(TileStoreTest, CacheEvictsLeastRecentlyUsed) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0, .cache_capacity = 2});
  ASSERT_TRUE(store.Build(map).ok());
  ASSERT_GE(store.NumTiles(), 3u);

  ASSERT_TRUE(store.LoadRegion(map.BoundingBox()).ok());
  TileStoreStats stats = store.stats();
  EXPECT_GT(stats.cache_evictions, 0u);

  store.ResetStats();
  stats = store.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

TEST(TileStoreTest, HugeQueryBoxIsRejected) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());

  Aabb degenerate({-1e9, -1e9}, {1e9, 1e9});
  auto tiles = store.TilesInBox(degenerate);
  EXPECT_EQ(tiles.status().code(), StatusCode::kInvalidArgument);
  auto region = store.LoadRegion(degenerate);
  EXPECT_EQ(region.status().code(), StatusCode::kInvalidArgument);

  // Sane boxes still work.
  auto ok_tiles = store.TilesInBox(map.BoundingBox());
  ASSERT_TRUE(ok_tiles.ok());
  EXPECT_EQ(ok_tiles->size(), store.NumTiles());
}

TEST(TileStoreTest, ExtremeQueryBoxesAreRejectedNotOverflowed) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 1.0});
  ASSERT_TRUE(store.Build(map).ok());

  // Per-axis spans near 2^32: the old span product overflowed int64 and
  // could wrap past the guard into a 2^64-iteration loop.
  Aabb full_range({-2e9, -2e9}, {2e9, 2e9});
  EXPECT_EQ(store.TilesInBox(full_range).status().code(),
            StatusCode::kInvalidArgument);

  // Coordinates whose tile index exceeds int32: the old code cast them
  // to int32 (UB) before any guard ran.
  Aabb far_away({1e18, 0.0}, {1e18 + 1.0, 1.0});
  EXPECT_EQ(store.TilesInBox(far_away).status().code(),
            StatusCode::kInvalidArgument);

  Aabb nan_box({std::numeric_limits<double>::quiet_NaN(), 0.0}, {1.0, 1.0});
  EXPECT_EQ(store.TilesInBox(nan_box).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TileStoreTest, DisabledCacheCountsNoMisses) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0, .cache_capacity = 0});
  ASSERT_TRUE(store.Build(map).ok());

  ASSERT_TRUE(store.LoadRegion(map.BoundingBox()).ok());
  ASSERT_TRUE(store.LoadRegion(map.BoundingBox()).ok());
  TileStoreStats stats = store.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

TEST(TileStoreTest, BuildRejectsDegenerateElementBox) {
  HdMap map;
  Lanelet huge;
  huge.id = 1;
  // A bad sensor fix: one endpoint flies off by thousands of kilometers,
  // covering billions of tiles.
  huge.centerline = LineString({{0, 0}, {5e7, 5e7}});
  ASSERT_TRUE(map.AddLanelet(huge).ok());
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  Status s = store.Build(map);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.NumTiles(), 0u);
}

// The pre-Options scalar constructor is gone; Options is the only way to
// configure a store, and its fields cover what the scalars used to.
TEST(TileStoreTest, OptionsConstructorConfiguresStore) {
  TileStore store(
      TileStore::Options{.tile_size_m = 128.0, .cache_capacity = 4});
  EXPECT_EQ(store.tile_size(), 128.0);
  EXPECT_EQ(store.cache_capacity(), 4u);
  HdMap map = SmallTown();
  ASSERT_TRUE(store.Build(map).ok());
  EXPECT_GT(store.NumTiles(), 0u);
}

TEST(TileStoreTest, CopyKeepsBytesDropsCache) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());
  auto present = store.TilesInBox(map.BoundingBox());
  ASSERT_TRUE(present.ok());
  ASSERT_TRUE(store.LoadTile(present->front()).ok());  // Warm one entry.

  TileStore copy = store;
  EXPECT_EQ(copy.RawTilesCopy(), store.RawTilesCopy());
  EXPECT_EQ(copy.tile_size(), store.tile_size());
  TileStoreStats stats = copy.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  // The copy's cache starts cold: the first load is a miss, not a hit.
  ASSERT_TRUE(copy.LoadTile(present->front()).ok());
  EXPECT_EQ(copy.stats().cache_misses, 1u);
}

TEST(TileStoreTest, RebuildTilesMatchesFullBuild) {
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());

  // Mutate the map: move every landmark by a small offset.
  HdMap changed = map;
  std::vector<std::pair<ElementId, Vec3>> moves;
  for (const auto& [id, lm] : changed.landmarks()) {
    moves.push_back({id, lm.position + Vec3{1, 1, 0}});
  }
  std::vector<TileId> touched;
  for (const auto& [id, pos] : moves) {
    const Landmark* lm = changed.FindLandmark(id);
    touched.push_back(store.TileAt(lm->position.xy()));
    touched.push_back(store.TileAt(pos.xy()));
    ASSERT_TRUE(changed.MoveLandmark(id, pos).ok());
  }

  ASSERT_TRUE(store.RebuildTiles(changed, touched).ok());
  TileStore full(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(full.Build(changed).ok());
  EXPECT_EQ(store.RawTilesCopy(), full.RawTilesCopy());
}

TEST(TileStoreTest, TileCoverageIncludesAbsentTiles) {
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  // Empty store: coverage still enumerates the tiling, TilesInBox doesn't.
  Aabb box{{-50, -50}, {49, 49}};
  auto coverage = store.TileCoverage(box);
  ASSERT_TRUE(coverage.ok());
  EXPECT_EQ(coverage->size(), 4u);
  auto present = store.TilesInBox(box);
  ASSERT_TRUE(present.ok());
  EXPECT_TRUE(present->empty());
}

TEST(TileStoreTest, CacheCountersExportThroughRegistry) {
  MetricsRegistry registry;
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{
      .tile_size_m = 128.0, .cache_capacity = 256, .metrics = &registry});
  ASSERT_TRUE(store.Build(map).ok());
  auto present = store.TilesInBox(map.BoundingBox());
  ASSERT_TRUE(present.ok());
  ASSERT_TRUE(store.LoadTile(present->front()).ok());
  ASSERT_TRUE(store.LoadTile(present->front()).ok());
  EXPECT_EQ(registry.GetCounter("tile_store.cache_misses")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("tile_store.cache_hits")->value(), 1u);
}

/// Flips one payload byte of tile `id` in place via the raw-ingestion
/// path, so the frame CRC no longer matches.
void CorruptTile(TileStore* store, const TileId& id) {
  auto bytes = store->RawTileBytes(id);
  ASSERT_TRUE(bytes.ok());
  std::string bad(bytes->view());
  ASSERT_GT(bad.size(), 20u);
  bad[20] ^= 0x01;
  store->PutRawTile(id, std::move(bad));
}

TEST(TileStoreCorruptionTest, PartialModeStitchesAroundCorruptTile) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());
  TileId bad_tile = store.TileAt({15, 10});  // Lanelet 1's tile.
  CorruptTile(&store, bad_tile);

  Aabb both({0, 0}, {530, 20});
  RegionReport report;
  auto region = store.LoadRegion(both, &report);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  // The surviving tile's content is served...
  EXPECT_NE(region->FindLanelet(2), nullptr);
  // ...the corrupt tile's is not, and the hole is reported.
  EXPECT_EQ(region->FindLanelet(1), nullptr);
  ASSERT_EQ(report.corrupt_tiles.size(), 1u);
  EXPECT_EQ(report.corrupt_tiles[0], bad_tile);
  EXPECT_EQ(store.NumQuarantined(), 1u);

  // Strict mode refuses the same region outright.
  auto strict = store.LoadRegion(both, nullptr, 0, RegionReadMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);
}

TEST(TileStoreCorruptionTest, QuarantineFailsFastAndNeverCaches) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());
  TileId bad_tile = store.TileAt({15, 10});
  CorruptTile(&store, bad_tile);

  auto first = store.LoadTile(bad_tile);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.NumQuarantined(), 1u);
  // The second load fails fast off the quarantine set (no re-decode) and
  // never lands in the cache: still zero hits.
  store.ResetStats();
  auto second = store.LoadTile(bad_tile);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.stats().cache_hits, 0u);
}

TEST(TileStoreCorruptionTest, ReplacingBytesClearsQuarantine) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(store.Build(map).ok());
  TileId bad_tile = store.TileAt({15, 10});
  std::string good_bytes = store.RawTilesCopy().at(bad_tile.Morton());
  CorruptTile(&store, bad_tile);
  ASSERT_FALSE(store.LoadTile(bad_tile).ok());
  ASSERT_EQ(store.NumQuarantined(), 1u);

  // PutRawTile with intact bytes lifts the quarantine...
  store.PutRawTile(bad_tile, good_bytes);
  EXPECT_EQ(store.NumQuarantined(), 0u);
  auto reloaded = store.LoadTile(bad_tile);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_NE(reloaded->FindLanelet(1), nullptr);

  // ...and so does a full rebuild after re-corrupting.
  CorruptTile(&store, bad_tile);
  ASSERT_FALSE(store.LoadTile(bad_tile).ok());
  ASSERT_EQ(store.NumQuarantined(), 1u);
  ASSERT_TRUE(store.Build(map).ok());
  EXPECT_EQ(store.NumQuarantined(), 0u);
  EXPECT_TRUE(store.LoadTile(bad_tile).ok());
}

TEST(TileStoreCorruptionTest, FaultInjectorCorruptsLoadsDeterministically) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  FaultInjector faults(1234);
  faults.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  TileStore store(TileStore::Options{.tile_size_m = 100.0,
                                     .cache_capacity = 0,
                                     .fault_injector = &faults});
  ASSERT_TRUE(store.Build(map).ok());
  TileId id = store.TileAt({15, 10});

  auto load = store.LoadTile(id);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kDataLoss);
  EXPECT_GE(faults.InjectedCount(TileStore::kLoadFaultSite), 1u);
  EXPECT_EQ(store.NumQuarantined(), 1u);

  // Same seed, fresh store: the identical blob makes the identical
  // decision (content-hash determinism, independent of call order).
  FaultInjector faults2(1234);
  faults2.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 1.0});
  TileStore store2(TileStore::Options{.tile_size_m = 100.0,
                                      .cache_capacity = 0,
                                      .fault_injector = &faults2});
  ASSERT_TRUE(store2.Build(map).ok());
  EXPECT_FALSE(store2.LoadTile(id).ok());

  // Probability 0: injector wired but inert.
  FaultInjector quiet(1234);
  quiet.AddPolicy({TileStore::kLoadFaultSite, FaultKind::kBitFlip, 0.0});
  TileStore store3(TileStore::Options{.tile_size_m = 100.0,
                                      .cache_capacity = 0,
                                      .fault_injector = &quiet});
  ASSERT_TRUE(store3.Build(map).ok());
  EXPECT_TRUE(store3.LoadTile(id).ok());
  EXPECT_EQ(quiet.TotalInjected(), 0u);
}

TEST(TileStoreCorruptionTest, PutRawTileIngestsWireBytes) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore source(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(source.Build(map).ok());

  // Ship two tiles' bytes to a second store over the "wire".
  TileStore sink(TileStore::Options{.tile_size_m = 100.0});
  ASSERT_TRUE(sink.Build(HdMap{}).ok());
  TileId t1 = source.TileAt({15, 10});
  TileId t2 = source.TileAt({515, 10});
  sink.PutRawTile(t1, source.RawTilesCopy().at(t1.Morton()));
  sink.PutRawTile(t2, source.RawTilesCopy().at(t2.Morton()));
  EXPECT_EQ(sink.NumTiles(), 2u);
  auto region = sink.LoadRegion(Aabb({0, 0}, {530, 20}));
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_NE(region->FindLanelet(1), nullptr);
  EXPECT_NE(region->FindLanelet(2), nullptr);
}

// --- Span-based view API ---

TEST(TileStoreViewTest, CompiledDefaultFormatMatchesBuildFlag) {
  // The Options default tracks -DHDMAP_FORMAT_V3 (see the `v1-fallback`
  // preset); every other view test pins the format explicitly so the
  // suite is green under either default.
  TileStore store(TileStore::Options{.tile_size_m = 100.0});
#if HDMAP_FORMAT_V3_DEFAULT
  EXPECT_EQ(store.format(), TileFormat::kFlatV3);
#else
  EXPECT_EQ(store.format(), TileFormat::kLegacyV1);
#endif
}

TEST(TileStoreViewTest, GetTileViewServesElementsInPlace) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0,
                                     .format = TileFormat::kFlatV3});
  ASSERT_TRUE(store.Build(map).ok());

  auto view = store.GetTileView(store.TileAt({15, 10}));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto lane = view->view.FindLanelet(1);
  ASSERT_TRUE(lane.has_value());
  EXPECT_EQ(lane->centerline().front(), (Vec2{10, 10}));
  EXPECT_EQ(lane->regulatory_ids().ToVector(),
            (std::vector<ElementId>{900}));
  EXPECT_FALSE(view->view.FindLanelet(2).has_value());  // Other tile.
  EXPECT_EQ(view->view.num_regulatory_elements(), 1u);

  // Unknown tiles are kNotFound, exactly like LoadTile.
  EXPECT_EQ(store.GetTileView(TileId{99, 99}).status().code(),
            StatusCode::kNotFound);
}

TEST(TileStoreViewTest, ViewPinsBytesAcrossReplaceAndDestruction) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  auto store = std::make_unique<TileStore>(
      TileStore::Options{.tile_size_m = 100.0,
                         .format = TileFormat::kFlatV3});
  ASSERT_TRUE(store->Build(map).ok());
  TileId id = store->TileAt({15, 10});

  auto pinned = store->GetTileView(id);
  ASSERT_TRUE(pinned.ok());

  // Replace the tile with an empty map's encoding, then free the store
  // entirely: the held view must keep reading the ORIGINAL bytes
  // (generation pinning — readers never synchronize with writers).
  store->PutRawTile(id, EncodeTileV3(HdMap{}));
  auto fresh = store->GetTileView(id);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->view.NumElements(), 0u);
  store.reset();

  auto lane = pinned->view.FindLanelet(1);
  ASSERT_TRUE(lane.has_value());
  EXPECT_EQ(lane->centerline().back(), (Vec2{20, 10}));
  auto materialized = pinned->view.Materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_NE(materialized->FindRegulatoryElement(900), nullptr);
}

TEST(TileStoreViewTest, LegacyV1StoreRefusesViewsButStillDecodes) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0,
                                     .format = TileFormat::kLegacyV1});
  ASSERT_TRUE(store.Build(map).ok());
  TileId id = store.TileAt({15, 10});

  // v1 blobs have no offset tables to point a view at.
  auto view = store.GetTileView(id);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kFailedPrecondition);

  // The legacy decode path is unaffected, and the bytes really are v1.
  auto tile = store.LoadTile(id);
  ASSERT_TRUE(tile.ok()) << tile.status().ToString();
  EXPECT_NE(tile->FindLanelet(1), nullptr);
  auto bytes = store.RawTileBytes(id);
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(IsTileV3(bytes->view()));
}

TEST(TileStoreViewTest, FormatsDecodeToIdenticalMaps) {
  HdMap map = SmallTown();
  TileStore v3(TileStore::Options{.tile_size_m = 128.0,
                                  .format = TileFormat::kFlatV3});
  TileStore v1(TileStore::Options{.tile_size_m = 128.0,
                                  .format = TileFormat::kLegacyV1});
  ASSERT_TRUE(v3.Build(map).ok());
  ASSERT_TRUE(v1.Build(map).ok());
  ASSERT_EQ(v3.NumTiles(), v1.NumTiles());
  Aabb box = map.BoundingBox();
  auto r3 = v3.LoadRegion(box);
  auto r1 = v1.LoadRegion(box);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r1.ok());
  // Same canonical fingerprint: the two formats are interchangeable at
  // the map level, byte-determinism gates aside.
  EXPECT_EQ(SerializeMap(*r3), SerializeMap(*r1));
}

TEST(TileStoreViewTest, CorruptTileQuarantinesOnViewPath) {
  HdMap map = TwoTileWorldWithSharedRegElement();
  TileStore store(TileStore::Options{.tile_size_m = 100.0,
                                     .format = TileFormat::kFlatV3});
  ASSERT_TRUE(store.Build(map).ok());
  TileId id = store.TileAt({15, 10});
  std::string good = store.RawTilesCopy().at(id.Morton());
  CorruptTile(&store, id);

  auto view = store.GetTileView(id);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.NumQuarantined(), 1u);
  // Fail-fast off the quarantine set, same contract as LoadTile.
  EXPECT_EQ(store.GetTileView(id).status().code(), StatusCode::kDataLoss);

  // Repair lifts the quarantine for the view path too.
  store.PutRawTile(id, good);
  EXPECT_EQ(store.NumQuarantined(), 0u);
  auto repaired = store.GetTileView(id);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(repaired->view.FindLanelet(1).has_value());
}

TEST(TileStoreConcurrencyTest, ConcurrentViewersRaceReplacesSafely) {
  // GetTileView readers race a writer alternating corrupt and pristine
  // bytes for the same tile. Under TSan this proves the view cache and
  // pin handoff are race-free; in any build it checks that (a) a held
  // view never goes bad mid-read and (b) no stale quarantine or cached
  // view outlives the final repair.
  HdMap map = SmallTown();
  TileStore store(TileStore::Options{.tile_size_m = 128.0,
                                     .format = TileFormat::kFlatV3});
  ASSERT_TRUE(store.Build(map).ok());
  auto in_box = store.TilesInBox(map.BoundingBox());
  ASSERT_TRUE(in_box.ok());
  TileId victim = (*in_box)[in_box->size() / 2];
  std::string pristine = store.RawTilesCopy().at(victim.Morton());
  std::string corrupt = pristine;
  corrupt[corrupt.size() / 2] ^= 0x40;

  constexpr int kReaders = 4;
  constexpr int kWriterRounds = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &victim, &stop, &bad_reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto view = store.GetTileView(victim);
        if (!view.ok()) continue;  // Lost the race to corrupt bytes: fine.
        // A view that validated must stay fully readable even while the
        // writer keeps replacing the store's bytes underneath.
        auto materialized = view->view.Materialize();
        if (!materialized.ok()) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kWriterRounds; ++i) {
    store.PutRawTile(victim, i % 2 == 0 ? corrupt : pristine);
  }
  store.PutRawTile(victim, pristine);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0);

  auto final_view = store.GetTileView(victim);
  ASSERT_TRUE(final_view.ok()) << final_view.status().ToString();
  EXPECT_EQ(store.NumQuarantined(), 0u);
}

TEST(TileStoreConcurrencyTest, PutRawTileRacesReadersSafely) {
  // The ingestion scenario: one thread repeatedly replaces a tile's bytes
  // (alternating corrupt and pristine payloads, as when re-fetching a
  // quarantined tile from a peer) while reader threads stitch regions
  // spanning it. Run under TSan this is the proof that per-tile Put is
  // safe against concurrent loads; in any build it checks the
  // generation guard — a reader that raced the old bytes must never leave
  // a stale quarantine verdict over the repaired payload.
  HdMap map = SmallTown();
  Aabb box = map.BoundingBox();
  TileStore store(TileStore::Options{.tile_size_m = 128.0});
  ASSERT_TRUE(store.Build(map).ok());
  auto in_box = store.TilesInBox(box);
  ASSERT_TRUE(in_box.ok());
  ASSERT_GT(in_box->size(), 1u);
  TileId victim = (*in_box)[in_box->size() / 2];
  std::string pristine = store.RawTilesCopy().at(victim.Morton());
  std::string corrupt = pristine;
  corrupt[corrupt.size() / 2] ^= 0x40;  // Breaks the frame CRC.

  constexpr int kReaders = 4;
  constexpr int kWriterRounds = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &box, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Partial mode must always succeed: the racing tile is at worst
        // skipped, never fatal.
        if (!store.LoadRegion(box).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kWriterRounds; ++i) {
    store.PutRawTile(victim, i % 2 == 0 ? corrupt : pristine);
  }
  // Final repair, then let readers observe it.
  store.PutRawTile(victim, pristine);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // No stale verdict survived the last Put: a strict read of the whole
  // box decodes every tile, including the repaired one.
  auto strict =
      store.LoadRegion(box, nullptr, 0, RegionReadMode::kStrict);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(store.NumQuarantined(), 0u);
}

}  // namespace
}  // namespace hdmap
