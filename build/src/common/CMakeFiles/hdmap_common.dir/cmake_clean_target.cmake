file(REMOVE_RECURSE
  "libhdmap_common.a"
)
