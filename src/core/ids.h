#ifndef HDMAP_CORE_IDS_H_
#define HDMAP_CORE_IDS_H_

#include <cstdint>

namespace hdmap {

/// All map elements share one id space (Lanelet2 convention). Id 0 is
/// reserved as "invalid".
using ElementId = int64_t;

inline constexpr ElementId kInvalidId = 0;

/// Monotonic id allocator for map construction pipelines.
class IdAllocator {
 public:
  explicit IdAllocator(ElementId first = 1) : next_(first) {}

  ElementId Next() { return next_++; }

  /// Ensures subsequently allocated ids are greater than `id`.
  void ReserveThrough(ElementId id) {
    if (id >= next_) next_ = id + 1;
  }

 private:
  ElementId next_;
};

}  // namespace hdmap

#endif  // HDMAP_CORE_IDS_H_
