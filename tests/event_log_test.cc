#include "common/event_log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace hdmap {
namespace {

TEST(EventLogTest, AppendStampsSequenceAndTime) {
  EventLog log;
  log.Append(EventLog::Type::kQuarantinedTile, 42, "tile (1,2) corrupt",
             StatusCode::kDataLoss);
  log.Append(EventLog::Type::kSlowRequest, 43, "get_region took 300 ms");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_appended(), 2u);

  std::vector<EventLog::Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  // Newest first.
  EXPECT_EQ(recent[0].seq, 2u);
  EXPECT_EQ(recent[0].type, EventLog::Type::kSlowRequest);
  EXPECT_EQ(recent[0].code, StatusCode::kOk);
  EXPECT_EQ(recent[0].trace_id, 43u);
  EXPECT_EQ(recent[1].seq, 1u);
  EXPECT_EQ(recent[1].type, EventLog::Type::kQuarantinedTile);
  EXPECT_EQ(recent[1].code, StatusCode::kDataLoss);
  EXPECT_EQ(recent[1].detail, "tile (1,2) corrupt");
  EXPECT_GT(recent[0].unix_ms, 0);
  EXPECT_GE(recent[0].unix_ms, recent[1].unix_ms);
}

TEST(EventLogTest, RingDropsOldestAtCapacity) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Append(EventLog::Type::kInjectedFault, 0, std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  std::vector<EventLog::Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].seq, 10u);
  EXPECT_EQ(recent[0].detail, "9");
  EXPECT_EQ(recent[3].seq, 7u);
  EXPECT_EQ(recent[3].detail, "6");
}

TEST(EventLogTest, RecentHonorsMaxN) {
  EventLog log;
  for (int i = 0; i < 8; ++i) {
    log.Append(EventLog::Type::kWalDataLoss, 0, "");
  }
  std::vector<EventLog::Event> recent = log.Recent(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].seq, 8u);
  EXPECT_EQ(recent[2].seq, 6u);
  EXPECT_TRUE(log.Recent(0).empty());
}

TEST(EventLogTest, SetCapacityClampsAndTrims) {
  EventLog log(8);
  for (int i = 0; i < 8; ++i) {
    log.Append(EventLog::Type::kCheckpointFallback, 0, std::to_string(i));
  }
  log.set_capacity(2);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.Recent()[0].detail, "7");
  log.set_capacity(0);  // Clamped to 1.
  EXPECT_EQ(log.capacity(), 1u);
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLogTest, ConcurrentAppendsKeepSequenceDense) {
  EventLog log(100000);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(EventLog::Type::kSlowRequest, 0, "");
      }
    });
  }
  for (auto& t : threads) t.join();
  constexpr uint64_t kTotal = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(log.total_appended(), kTotal);
  EXPECT_EQ(log.size(), kTotal);
  std::vector<EventLog::Event> recent = log.Recent(kTotal);
  ASSERT_EQ(recent.size(), kTotal);
  // Strictly descending, dense sequence: no duplicates, no gaps.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, kTotal - i);
  }
}

TEST(EventLogTest, TypeToStringCoversEveryType) {
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kQuarantinedTile),
            "QUARANTINED_TILE");
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kWalDataLoss),
            "WAL_DATA_LOSS");
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kInjectedFault),
            "INJECTED_FAULT");
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kCheckpointFallback),
            "CHECKPOINT_FALLBACK");
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kSlowRequest),
            "SLOW_REQUEST");
  EXPECT_EQ(EventLog::TypeToString(EventLog::Type::kRecoverySummary),
            "RECOVERY_SUMMARY");
}

TEST(EventLogTest, TypeFromStringInvertsTypeToString) {
  for (uint8_t raw = 0;
       raw <= static_cast<uint8_t>(EventLog::Type::kReplicaCatchUp); ++raw) {
    EventLog::Type type = static_cast<EventLog::Type>(raw);
    EventLog::Type back = EventLog::Type::kQuarantinedTile;
    ASSERT_TRUE(
        EventLog::TypeFromString(EventLog::TypeToString(type), &back));
    EXPECT_EQ(back, type);
  }
  EventLog::Type out = EventLog::Type::kSlowRequest;
  EXPECT_FALSE(EventLog::TypeFromString("NOT_A_TYPE", &out));
  EXPECT_EQ(out, EventLog::Type::kSlowRequest);  // Untouched on failure.
}

TEST(EventLogTest, AppendJsonEmitsWireShape) {
  EventLog::Event event;
  event.seq = 3;
  event.unix_ms = 1754700000200;
  event.type = EventLog::Type::kSlowRequest;
  event.code = StatusCode::kOk;
  event.trace_id = 18446744073709551615ull;
  event.detail = "took 1.2s \"budget\"\n0.5s";
  std::string out;
  EventLog::AppendJson(event, &out);
  EXPECT_EQ(out,
            "{\"seq\":3,\"unix_ms\":1754700000200,\"type\":\"SLOW_REQUEST\","
            "\"code\":\"OK\",\"trace_id\":\"18446744073709551615\","
            "\"detail\":\"took 1.2s \\\"budget\\\"\\n0.5s\"}");
}

}  // namespace
}  // namespace hdmap
